#include "src/sim/replay_engine.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/sim/event_queue.hh"

namespace sam {

namespace {

/**
 * One in-flight read of a core's MSHR window. `done` stays
 * kInvalidCycle until the completion arrives.
 */
struct Mshr
{
    std::uint64_t id = 0;
    Cycle done = kInvalidCycle;
};

struct CoreState
{
    const CoreTrace *trace = nullptr;
    std::size_t idx = 0;
    Cycle clock = 0;
    /**
     * In-flight reads, unordered. MSHR-sized and flat: the retire
     * scan and the completion match walk a handful of contiguous
     * entries instead of churning per-epoch hash maps.
     */
    std::vector<Mshr> window;
};

} // namespace

const std::string &
replayEngineName(ReplayEngineKind kind)
{
    static const std::string step = "step";
    static const std::string event = "event";
    return kind == ReplayEngineKind::Step ? step : event;
}

ReplayEngineKind
parseReplayEngine(const std::string &name)
{
    if (name == "step")
        return ReplayEngineKind::Step;
    if (name == "event")
        return ReplayEngineKind::Event;
    panic("unknown replay engine '", name, "' (want step or event)");
}

Cycle
replayStep(const std::vector<std::unique_ptr<CorePort>> &ports,
           MemoryController &controller, DesignModel &model,
           unsigned mshrs_per_core)
{
    const unsigned num_cores = static_cast<unsigned>(ports.size());
    std::vector<CoreState> cores(num_cores);
    std::size_t num_epochs = 0;
    for (unsigned c = 0; c < num_cores; ++c) {
        cores[c].trace = &ports[c]->trace();
        cores[c].window.reserve(mshrs_per_core);
        num_epochs = std::max(num_epochs, cores[c].trace->numEpochs());
    }

    std::uint64_t next_id = 1;
    Cycle max_done = 0;

    for (std::size_t epoch = 0; epoch < num_epochs; ++epoch) {
        // Barrier: all cores resume together after prior epoch traffic.
        for (auto &cs : cores) {
            cs.clock = std::max(cs.clock, max_done);
            cs.idx = epoch < cs.trace->numEpochs()
                         ? cs.trace->epochBegin(epoch)
                         : 0;
            cs.window.clear();
        }

        auto issue_some = [&](unsigned c) -> bool {
            CoreState &cs = cores[c];
            if (epoch >= cs.trace->numEpochs())
                return false;
            const CoreTrace &trace = *cs.trace;
            const std::size_t end = trace.epochEnd(epoch);
            bool issued = false;
            unsigned batch = 0;
            while (cs.idx < end && batch < 32) {
                if (controller.readQueueDepth() +
                        controller.writeQueueDepth() > 256) {
                    break; // backpressure
                }
                const TraceEntry &e = trace.entries[cs.idx];
                Cycle t = cs.clock + e.gap;
                const bool is_read = !isWrite(e.type);
                if (is_read && cs.window.size() >= mshrs_per_core) {
                    // Retire the earliest *known* completion; stall if
                    // none of the in-flight reads has been served yet.
                    Cycle best = kInvalidCycle;
                    std::size_t best_i = cs.window.size();
                    for (std::size_t i = 0; i < cs.window.size(); ++i) {
                        if (cs.window[i].done < best) {
                            best = cs.window[i].done;
                            best_i = i;
                        }
                    }
                    if (best_i == cs.window.size())
                        break; // stalled on outstanding misses
                    // Swap-with-back: MSHR slots are unordered (the
                    // scan above picks by completion time, entries
                    // match completions by id), so the O(n) mid-vector
                    // erase was pure overhead.
                    cs.window[best_i] = cs.window.back();
                    cs.window.pop_back();
                    t = std::max(t, best);
                }

                MemRequest req;
                if (isStride(e.type)) {
                    req = model.strideRequest(e.type, trace.lines(e),
                                              e.lineCount, e.sector, t,
                                              c);
                } else {
                    req = model.lineRequest(e.type, trace.lines(e)[0],
                                            t, c);
                }
                req.id = next_id++;
                if (is_read)
                    cs.window.push_back({req.id, kInvalidCycle});
                controller.push(std::move(req));
                cs.clock = t;
                ++cs.idx;
                issued = true;
                ++batch;
            }
            return issued;
        };

        while (true) {
            bool progress = false;
            for (unsigned c = 0; c < num_cores; ++c)
                progress = issue_some(c) || progress;

            if (auto comp = controller.serviceNext()) {
                max_done = std::max(max_done, comp->done);
                if (comp->isRead) {
                    sam_assert(comp->coreId < num_cores,
                               "orphan completion");
                    CoreState &cs = cores[comp->coreId];
                    bool matched = false;
                    for (Mshr &m : cs.window) {
                        if (m.id == comp->id) {
                            m.done = comp->done;
                            matched = true;
                            break;
                        }
                    }
                    sam_assert(matched, "orphan completion");
                }
                progress = true;
            }

            if (!progress) {
                bool all_issued = true;
                for (unsigned c = 0; c < num_cores; ++c) {
                    if (epoch < cores[c].trace->numEpochs() &&
                        cores[c].idx <
                            cores[c].trace->epochEnd(epoch)) {
                        all_issued = false;
                    }
                }
                sam_assert(all_issued || controller.hasPending(),
                           "replay deadlock");
                if (all_issued && !controller.hasPending())
                    break;
            }
        }

        for (const auto &cs : cores)
            max_done = std::max(max_done, cs.clock);
    }
    return max_done;
}

namespace {

/** Why a core is absent from the event engine's issue sweeps. */
enum class Wait : std::uint8_t
{
    Runnable,      ///< In the sweep.
    Barrier,       ///< Parked until its epoch-barrier wake pops.
    Backpressure,  ///< Queue depth exceeded the issue threshold.
    MshrStall,     ///< Window full, no in-flight read served yet.
    EpochDone,     ///< All of this epoch's entries issued.
};

struct EventCoreState : CoreState
{
    Wait wait = Wait::Runnable;
    /** A wake event for this core is already in the queue. */
    bool queuedWake = false;
};

} // namespace

Cycle
replayEvent(const std::vector<std::unique_ptr<CorePort>> &ports,
            MemoryController &controller, DesignModel &model,
            unsigned mshrs_per_core)
{
    const unsigned num_cores = static_cast<unsigned>(ports.size());
    std::vector<EventCoreState> cores(num_cores);
    std::size_t num_epochs = 0;
    for (unsigned c = 0; c < num_cores; ++c) {
        cores[c].trace = &ports[c]->trace();
        cores[c].window.reserve(mshrs_per_core);
        num_epochs = std::max(num_epochs, cores[c].trace->numEpochs());
    }

    std::uint64_t next_id = 1;
    Cycle max_done = 0;
    EventQueue wakes;
    unsigned runnable = 0;
    unsigned backpressured = 0;

    // Publish a stall-release point for a parked core. Idempotent: a
    // core carries at most one queued wake.
    const auto publishWake = [&](unsigned c, Cycle at) {
        EventCoreState &cs = cores[c];
        if (!cs.queuedWake) {
            cs.queuedWake = true;
            wakes.push(at, c);
        }
    };

    // Pop every due wake (all queued wakes are due: each is published
    // the moment its release condition holds) in deterministic
    // (cycle, source, seq) order and move the cores into the sweep.
    const auto drainWakes = [&]() {
        while (!wakes.empty()) {
            const EventQueue::Event e = wakes.pop();
            EventCoreState &cs = cores[e.source];
            cs.queuedWake = false;
            if (cs.wait != Wait::Runnable && cs.wait != Wait::EpochDone) {
                if (cs.wait == Wait::Backpressure)
                    --backpressured;
                cs.wait = Wait::Runnable;
                ++runnable;
            }
        }
    };

    for (std::size_t epoch = 0; epoch < num_epochs; ++epoch) {
        // Barrier: all cores resume together after prior epoch traffic.
        // Each active core's release is published as an event at its
        // post-barrier clock instead of being polled into existence.
        runnable = 0;
        backpressured = 0;
        for (unsigned c = 0; c < num_cores; ++c) {
            EventCoreState &cs = cores[c];
            cs.clock = std::max(cs.clock, max_done);
            cs.idx = epoch < cs.trace->numEpochs()
                         ? cs.trace->epochBegin(epoch)
                         : 0;
            cs.window.clear();
            cs.queuedWake = false;
            if (epoch < cs.trace->numEpochs() &&
                cs.idx < cs.trace->epochEnd(epoch)) {
                cs.wait = Wait::Barrier;
                publishWake(c, cs.clock);
            } else {
                cs.wait = Wait::EpochDone;
            }
        }

        // Park the core out of the sweep until a wake re-admits it.
        const auto block = [&](EventCoreState &cs, Wait why) {
            cs.wait = why;
            if (why == Wait::Backpressure)
                ++backpressured;
            --runnable;
        };

        // Identical issue rules to replayStep's issue_some; the only
        // addition is classifying the exit so the core parks under the
        // matching release condition instead of being re-polled.
        auto issue_some = [&](unsigned c) -> bool {
            EventCoreState &cs = cores[c];
            const CoreTrace &trace = *cs.trace;
            const std::size_t end = trace.epochEnd(epoch);
            bool issued = false;
            unsigned batch = 0;
            while (cs.idx < end && batch < 32) {
                if (controller.readQueueDepth() +
                        controller.writeQueueDepth() > 256) {
                    block(cs, Wait::Backpressure);
                    return issued;
                }
                const TraceEntry &e = trace.entries[cs.idx];
                Cycle t = cs.clock + e.gap;
                const bool is_read = !isWrite(e.type);
                if (is_read && cs.window.size() >= mshrs_per_core) {
                    Cycle best = kInvalidCycle;
                    std::size_t best_i = cs.window.size();
                    for (std::size_t i = 0; i < cs.window.size(); ++i) {
                        if (cs.window[i].done < best) {
                            best = cs.window[i].done;
                            best_i = i;
                        }
                    }
                    if (best_i == cs.window.size()) {
                        block(cs, Wait::MshrStall);
                        return issued;
                    }
                    cs.window[best_i] = cs.window.back();
                    cs.window.pop_back();
                    t = std::max(t, best);
                }

                MemRequest req;
                if (isStride(e.type)) {
                    req = model.strideRequest(e.type, trace.lines(e),
                                              e.lineCount, e.sector, t,
                                              c);
                } else {
                    req = model.lineRequest(e.type, trace.lines(e)[0],
                                            t, c);
                }
                req.id = next_id++;
                if (is_read)
                    cs.window.push_back({req.id, kInvalidCycle});
                controller.push(std::move(req));
                cs.clock = t;
                ++cs.idx;
                issued = true;
                ++batch;
            }
            if (cs.idx >= end)
                block(cs, Wait::EpochDone);
            // Else the batch limit hit: the core stays in the sweep.
            return issued;
        };

        while (true) {
            drainWakes();
            bool progress = false;
            if (runnable > 0) {
                for (unsigned c = 0; c < num_cores; ++c) {
                    if (cores[c].wait != Wait::Runnable)
                        continue;
                    progress = issue_some(c) || progress;
                }
            }

            if (auto comp = controller.serviceNext()) {
                max_done = std::max(max_done, comp->done);
                if (comp->isRead) {
                    sam_assert(comp->coreId < num_cores,
                               "orphan completion");
                    EventCoreState &cs = cores[comp->coreId];
                    bool matched = false;
                    for (Mshr &m : cs.window) {
                        if (m.id == comp->id) {
                            m.done = comp->done;
                            matched = true;
                            break;
                        }
                    }
                    sam_assert(matched, "orphan completion");
                    // An MSHR retirement: the stalled owner now has a
                    // known completion to retire against.
                    if (cs.wait == Wait::MshrStall)
                        publishWake(comp->coreId, comp->done);
                }
                if (backpressured > 0 &&
                    controller.readQueueDepth() +
                            controller.writeQueueDepth() <= 256) {
                    for (unsigned c = 0; c < num_cores; ++c) {
                        if (cores[c].wait == Wait::Backpressure)
                            publishWake(c, controller.now());
                    }
                }
                progress = true;
            }

            if (!progress && wakes.empty()) {
                // Every core is parked with its release condition
                // unsatisfiable (no queued traffic left), so the epoch
                // is complete -- or the replay deadlocked.
                bool all_issued = true;
                for (unsigned c = 0; c < num_cores; ++c) {
                    if (epoch < cores[c].trace->numEpochs() &&
                        cores[c].idx <
                            cores[c].trace->epochEnd(epoch)) {
                        all_issued = false;
                    }
                }
                sam_assert(all_issued || controller.hasPending(),
                           "replay deadlock");
                if (all_issued && !controller.hasPending())
                    break;
            }
        }

        for (const auto &cs : cores)
            max_done = std::max(max_done, cs.clock);
    }
    return max_done;
}

} // namespace sam
