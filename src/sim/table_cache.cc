#include "src/sim/table_cache.hh"

#include "src/common/logging.hh"
#include "src/dram/data_path.hh"

namespace sam {

std::shared_ptr<const StoreSnapshot>
TableCache::materialized(const Table &ta, const Table &tb, EccScheme ecc)
{
    sam_assert(ta.layout() == tb.layout(),
               "table pair with mixed layouts");
    const Key key{ta.layout(),          ecc,
                  ta.gather(),          ta.base(),
                  ta.schema().numRecords, ta.schema().numFields,
                  tb.base(),            tb.schema().numRecords,
                  tb.schema().numFields};

    std::shared_ptr<Entry> entry;
    {
        MutexLock lock(mutex_);
        auto &slot = entries_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    MutexLock build_lock(entry->build);
    if (entry->snap) {
        hits_.fetch_add(1);
        return entry->snap;
    }
    ++misses_;
    // Encode into a scratch data path with no RAS/fault hooks: the
    // pristine bytes are what every system starts from.
    DataPath scratch(ecc);
    ta.materialize(scratch);
    tb.materialize(scratch);
    entry->snap = std::make_shared<const StoreSnapshot>(
        scratch.store().snapshot());
    return entry->snap;
}

} // namespace sam
