#include "src/sim/table_cache.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/common/thread_pool.hh"
#include "src/ecc/ecc_engine.hh"

namespace sam {

namespace {

/** Encode lines [first, last) of `table` into consecutive snapshot
 *  slots starting at `slot0 + first`. Each call uses its own
 *  registry-backed EccEngine, so chunks are thread-independent. */
void
encodeRange(const Table &table, EccScheme ecc, StoreSnapshot &snap,
            std::size_t slot0, std::size_t first, std::size_t last)
{
    EccEngine engine(ecc);
    std::uint8_t line[kCachelineBytes];
    for (std::size_t i = first; i < last; ++i) {
        table.buildLine(i * kCachelineBytes, line);
        engine.encodeLineInto(line, snap.mutableBlob(slot0 + i));
    }
}

} // namespace

TableCache::TableCache(unsigned build_threads)
    : buildThreads_(build_threads ? build_threads
                                  : ThreadPool::defaultWorkers())
{
}

TableCache::~TableCache() = default;

StoreSnapshot
TableCache::buildSnapshot(const Table &ta, const Table &tb, EccScheme ecc)
{
    // Lay out the slot structure up front (ta fully, then tb, both in
    // ascending address order -- exactly the insertion order direct
    // materialization through a DataPath would produce), then encode
    // each line independently into its slot.
    StoreSnapshot snap;
    snap.blobBytes = kCachelineBytes + EccEngine::parityBytesFor(ecc);
    sam_assert(ta.footprintBytes() % kCachelineBytes == 0 &&
                   tb.footprintBytes() % kCachelineBytes == 0,
               "table footprint not line-aligned");
    const std::size_t ta_lines = ta.footprintBytes() / kCachelineBytes;
    const std::size_t tb_lines = tb.footprintBytes() / kCachelineBytes;
    const std::size_t ta_slot0 = snap.appendDenseRows(ta.base(), ta_lines);
    const std::size_t tb_slot0 = snap.appendDenseRows(tb.base(), tb_lines);

    // Small builds are not worth the fan-out overhead.
    constexpr std::size_t kMinParallelLines = 1 << 14;
    const std::size_t total = ta_lines + tb_lines;
    if (buildThreads_ <= 1 || total < kMinParallelLines) {
        encodeRange(ta, ecc, snap, ta_slot0, 0, ta_lines);
        encodeRange(tb, ecc, snap, tb_slot0, 0, tb_lines);
        return snap;
    }

    // Chunk each table's line range; every chunk writes a disjoint
    // slot range, so the result is byte-identical at any thread count.
    const std::size_t chunk =
        std::max<std::size_t>(4096, total / (8 * buildThreads_));
    std::vector<std::function<void()>> tasks;
    auto chunkTable = [&](const Table &t, std::size_t slot0,
                          std::size_t lines) {
        for (std::size_t first = 0; first < lines; first += chunk) {
            const std::size_t last = std::min(lines, first + chunk);
            tasks.push_back([&t, ecc, &snap, slot0, first, last] {
                encodeRange(t, ecc, snap, slot0, first, last);
            });
        }
    };
    chunkTable(ta, ta_slot0, ta_lines);
    chunkTable(tb, tb_slot0, tb_lines);

    MutexLock pool_lock(poolMutex_);
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(buildThreads_);
    pool_->run(std::move(tasks));
    return snap;
}

std::shared_ptr<const StoreSnapshot>
TableCache::materialized(const Table &ta, const Table &tb, EccScheme ecc)
{
    sam_assert(ta.layout() == tb.layout(),
               "table pair with mixed layouts");
    const Key key{ta.layout(),          ecc,
                  ta.gather(),          ta.base(),
                  ta.schema().numRecords, ta.schema().numFields,
                  tb.base(),            tb.schema().numRecords,
                  tb.schema().numFields};

    std::shared_ptr<Entry> entry;
    {
        MutexLock lock(mutex_);
        auto &slot = entries_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    MutexLock build_lock(entry->build);
    if (entry->snap) {
        hits_.fetch_add(1);
        return entry->snap;
    }
    ++misses_;
    entry->snap = std::make_shared<const StoreSnapshot>(
        buildSnapshot(ta, tb, ecc));
    return entry->snap;
}

} // namespace sam
