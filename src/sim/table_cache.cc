#include "src/sim/table_cache.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/common/thread_pool.hh"
#include "src/ecc/ecc_engine.hh"

namespace sam {

namespace {

/** Build the data bytes of lines [first, last) of `table` directly
 *  into consecutive snapshot slots starting at `slot0 + first`. The
 *  parity tail of each slot stays zero: the snapshot is lazy-parity,
 *  so the ECC encode -- the dominant materialization cost -- is
 *  deferred to the rare consumer that actually observes a codeword. */
void
buildRange(const Table &table, StoreSnapshot &snap, std::size_t slot0,
           std::size_t first, std::size_t last)
{
    for (std::size_t i = first; i < last; ++i)
        table.buildLine(i * kCachelineBytes, snap.mutableBlob(slot0 + i));
}

} // namespace

TableCache::TableCache(unsigned build_threads)
    : buildThreads_(build_threads ? build_threads
                                  : ThreadPool::defaultWorkers())
{
}

TableCache::~TableCache() = default;

StoreSnapshot
TableCache::buildSnapshot(const Table &ta, const Table &tb,
                          unsigned parity_bytes)
{
    // Lay out the slot structure up front (ta fully, then tb, both in
    // ascending address order -- exactly the insertion order direct
    // materialization through a DataPath would produce), then build
    // each line's data bytes independently into its slot. Parity stays
    // zero-filled: the snapshot is marked lazy-parity and the
    // installing store reconstructs codewords on demand.
    StoreSnapshot snap;
    snap.blobBytes = kCachelineBytes + parity_bytes;
    snap.lazyParity = parity_bytes > 0;
    sam_assert(ta.footprintBytes() % kCachelineBytes == 0 &&
                   tb.footprintBytes() % kCachelineBytes == 0,
               "table footprint not line-aligned");
    const std::size_t ta_lines = ta.footprintBytes() / kCachelineBytes;
    const std::size_t tb_lines = tb.footprintBytes() / kCachelineBytes;
    const std::size_t ta_slot0 = snap.appendDenseRows(ta.base(), ta_lines);
    const std::size_t tb_slot0 = snap.appendDenseRows(tb.base(), tb_lines);

    // Small builds are not worth the fan-out overhead.
    constexpr std::size_t kMinParallelLines = 1 << 14;
    const std::size_t total = ta_lines + tb_lines;
    if (buildThreads_ <= 1 || total < kMinParallelLines) {
        buildRange(ta, snap, ta_slot0, 0, ta_lines);
        buildRange(tb, snap, tb_slot0, 0, tb_lines);
        return snap;
    }

    // Chunk each table's line range; every chunk writes a disjoint
    // slot range, so the result is byte-identical at any thread count.
    const std::size_t chunk =
        std::max<std::size_t>(4096, total / (8 * buildThreads_));
    std::vector<std::function<void()>> tasks;
    auto chunkTable = [&](const Table &t, std::size_t slot0,
                          std::size_t lines) {
        for (std::size_t first = 0; first < lines; first += chunk) {
            const std::size_t last = std::min(lines, first + chunk);
            tasks.push_back([&t, &snap, slot0, first, last] {
                buildRange(t, snap, slot0, first, last);
            });
        }
    };
    chunkTable(ta, ta_slot0, ta_lines);
    chunkTable(tb, tb_slot0, tb_lines);

    MutexLock pool_lock(poolMutex_);
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(buildThreads_);
    pool_->run(std::move(tasks));
    return snap;
}

std::shared_ptr<const StoreSnapshot>
TableCache::materialized(const Table &ta, const Table &tb, EccScheme ecc)
{
    sam_assert(ta.layout() == tb.layout(),
               "table pair with mixed layouts");
    // Lazy-parity snapshots hold only data bytes, so the cached blobs
    // depend on the parity *size* (slot stride), not the ECC scheme:
    // every chipkill scheme with the same parity footprint shares one
    // build.
    const unsigned parity_bytes = EccEngine::parityBytesFor(ecc);
    const Key key{ta.layout(),          parity_bytes,
                  ta.gather(),          ta.base(),
                  ta.schema().numRecords, ta.schema().numFields,
                  tb.base(),            tb.schema().numRecords,
                  tb.schema().numFields};

    std::shared_ptr<Entry> entry;
    {
        MutexLock lock(mutex_);
        auto &slot = entries_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    MutexLock build_lock(entry->build);
    if (entry->snap) {
        hits_.fetch_add(1);
        return entry->snap;
    }
    ++misses_;
    entry->snap = std::make_shared<const StoreSnapshot>(
        buildSnapshot(ta, tb, parity_bytes));
    return entry->snap;
}

} // namespace sam
