#include "src/sim/core_port.hh"

#include "src/common/logging.hh"

namespace sam {

namespace {

CoreCacheConfig
withSector(const CoreCacheConfig &cfg, unsigned sector_bytes)
{
    CoreCacheConfig out = cfg;
    out.l1.sectorBytes = sector_bytes;
    out.l2.sectorBytes = sector_bytes;
    out.llc.sectorBytes = sector_bytes;
    return out;
}

} // namespace

CorePort::CorePort(unsigned core_id, const CoreCacheConfig &cfg,
                   unsigned stride_unit, DataPath &data_path)
    : coreId_(core_id), strideUnit_(stride_unit), dataPath_(data_path),
      hierarchy_(withSector(cfg, stride_unit).l1,
                 withSector(cfg, stride_unit).l2,
                 withSector(cfg, stride_unit).llc, *this)
{
}

void
CorePort::record(AccessType type, std::size_t pool_offset,
                 std::size_t count, unsigned sector)
{
    trace_.append(type, sector, pool_offset, count,
                  clock_ - lastRecord_);
    lastRecord_ = clock_;
}

void
CorePort::recordLine(AccessType type, Addr line)
{
    const std::size_t offset = trace_.pool.size();
    trace_.pool.push_back(line);
    record(type, offset, 1, 0);
}

void
CorePort::recordSpan(AccessType type, const GatherPlan &plan)
{
    const std::size_t offset = trace_.pool.size();
    trace_.pool.insert(trace_.pool.end(), plan.lines.begin(),
                       plan.lines.end());
    record(type, offset, plan.lines.size(), plan.sector);
}

std::uint64_t
CorePort::load(Addr addr, unsigned bytes)
{
    sam_assert(bytes >= 1 && bytes <= 8, "load size");
    dataPath_.setNow(clock_);
    std::uint8_t buf[8] = {};
    const HierResult r = hierarchy_.read(addr, bytes, buf);
    loadPoisoned_ = r.poisoned;
    clock_ += r.delay;
    std::uint64_t v = 0;
    for (int i = static_cast<int>(bytes) - 1; i >= 0; --i)
        v = (v << 8) | buf[i];
    return v;
}

void
CorePort::store(Addr addr, std::uint64_t value, unsigned bytes)
{
    sam_assert(bytes >= 1 && bytes <= 8, "store size");
    dataPath_.setNow(clock_);
    std::uint8_t buf[8];
    for (unsigned i = 0; i < bytes; ++i) {
        buf[i] = static_cast<std::uint8_t>(value & 0xff);
        value >>= 8;
    }
    const HierResult r = hierarchy_.write(addr, buf, bytes);
    clock_ += r.delay;
}

void
CorePort::storeStream(Addr addr, std::uint64_t value, unsigned bytes)
{
    sam_assert(bytes >= 1 && bytes <= 8, "store size");
    dataPath_.setNow(clock_);
    std::uint8_t buf[8];
    for (unsigned i = 0; i < bytes; ++i) {
        buf[i] = static_cast<std::uint8_t>(value & 0xff);
        value >>= 8;
    }
    const HierResult r = hierarchy_.writeAllocate(addr, buf, bytes);
    clock_ += r.delay;
}

std::vector<std::uint8_t>
CorePort::strideLoad(const GatherPlan &plan)
{
    std::vector<std::uint8_t> out(kCachelineBytes);
    strideLoadInto(plan, out.data());
    return out;
}

void
CorePort::strideLoadInto(const GatherPlan &plan, std::uint8_t *out64)
{
    dataPath_.setNow(clock_);
    const HierResult r = hierarchy_.strideRead(plan, strideUnit_, out64);
    strideLoadPoison_ = r.poisonBits;
    clock_ += r.delay;
}

void
CorePort::strideStore(const GatherPlan &plan,
                      const std::vector<std::uint8_t> &line)
{
    sam_assert(line.size() == kCachelineBytes, "stride store size");
    dataPath_.setNow(clock_);
    const HierResult r =
        hierarchy_.strideWrite(plan, strideUnit_, line.data());
    clock_ += r.delay;
}

void
CorePort::compute(Cycle cycles)
{
    clock_ += cycles;
}

void
CorePort::recordScrubs(const ReadFlags &flags)
{
    if (!flags.scrubbed)
        return;
    // Demand scrubs are real timed writes: the corrected line goes back
    // over the bus, so the replay must charge their bandwidth/power.
    for (Addr scrubbed : dataPath_.lastScrubbedLines())
        recordLine(AccessType::Write, scrubbed);
}

void
CorePort::fetchLine(Addr line, std::uint8_t *out64)
{
    recordLine(AccessType::Read, line);
    const ReadFlags flags = dataPath_.readLineInto(line, out64);
    recordScrubs(flags);
    fetchPoisoned_ = flags.poisoned;
}

void
CorePort::fetchStride(const GatherPlan &plan, std::uint8_t *out64)
{
    recordSpan(AccessType::StrideRead, plan);
    const ReadFlags flags = dataPath_.strideReadInto(
        plan.lines.data(), plan.lines.size(), plan.sector, strideUnit_,
        out64);
    recordScrubs(flags);
    strideFetchPoison_ = flags.poisonBits;
}

void
CorePort::writeback(const Writeback &wb)
{
    recordLine(AccessType::Write, wb.line);
    dataPath_.writePartial(wb.line, wb.data.data(), wb.dirtyMask,
                           strideUnit_);
}

void
CorePort::writeStride(const GatherPlan &plan, const std::uint8_t *line64)
{
    recordSpan(AccessType::StrideWrite, plan);
    dataPath_.strideWrite(plan.lines.data(), plan.lines.size(),
                          plan.sector, strideUnit_, line64);
}

void
CorePort::newEpoch()
{
    trace_.beginEpoch();
}

} // namespace sam
