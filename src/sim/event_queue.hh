/**
 * @file
 * Deterministic next-event queue for the replay engines.
 *
 * A min-heap over `(cycle, source, seq)`: earliest cycle first, ties
 * broken by the numeric source id, remaining ties by insertion
 * sequence. Every field of the ordering key is a plain integer chosen
 * by the pusher -- never a pointer, never a hash -- so two runs that
 * push the same events pop them in the same order, which is what lets
 * the event engine stay bit-identical to the step engine.
 *
 * Sources publish their earliest actionable cycle (a bank's next-ready
 * time, a rank's refresh deadline, an MSHR retirement, a core's
 * stall-release point) and the engine advances by jumping to the queue
 * minimum instead of ticking through the stall window.
 */

#ifndef SAM_SIM_EVENT_QUEUE_HH
#define SAM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "src/common/logging.hh"
#include "src/common/types.hh"

namespace sam {

class EventQueue
{
  public:
    struct Event
    {
        Cycle cycle = 0;
        /** Publisher id (core, bank, rank -- the pusher's namespace). */
        std::uint32_t source = 0;
        /** Insertion sequence; the deterministic last-resort tie-break. */
        std::uint64_t seq = 0;
    };

    /** Publish `source`'s earliest actionable cycle. */
    void
    push(Cycle cycle, std::uint32_t source)
    {
        heap_.push(Event{cycle, source, nextSeq_++});
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** The earliest event without removing it. Queue must be non-empty. */
    const Event &
    peek() const
    {
        sam_assert(!heap_.empty(), "peek on empty EventQueue");
        return heap_.top();
    }

    /** Remove and return the earliest event. Queue must be non-empty. */
    Event
    pop()
    {
        sam_assert(!heap_.empty(), "pop on empty EventQueue");
        const Event e = heap_.top();
        heap_.pop();
        return e;
    }

    /** Total events ever pushed (equals the next insertion seq). */
    std::uint64_t pushed() const { return nextSeq_; }

  private:
    /**
     * Strict-weak order for the min-heap: later (cycle, source, seq)
     * sorts as "less" so the top is the minimum. The key is all three
     * integers -- no pointer or hash participates in the ordering.
     */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            if (a.source != b.source)
                return a.source > b.source;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace sam

#endif // SAM_SIM_EVENT_QUEUE_HH
