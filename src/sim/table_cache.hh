/**
 * @file
 * Process-wide cache of materialized benchmark tables.
 *
 * Materializing a table pair ECC-encodes every record line through the
 * Reed-Solomon encoder -- the dominant setup cost of building a
 * simulated system. The encoded bytes depend only on (schema, layout,
 * base address, gather factor, ECC scheme), not on the design being
 * simulated, so a campaign running many designs and sweep points can
 * encode each distinct table pair once and share the immutable blobs.
 *
 * Thread-safe: campaign workers share one cache. A key is materialized
 * under its own entry lock, so concurrent first touches of different
 * keys proceed in parallel while duplicate touches of the same key
 * wait and then share.
 */

#ifndef SAM_SIM_TABLE_CACHE_HH
#define SAM_SIM_TABLE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "src/common/thread_annotations.hh"
#include "src/dram/backing_store.hh"
#include "src/dram/timing.hh"
#include "src/imdb/table.hh"

namespace sam {

class ThreadPool;

class TableCache
{
  public:
    /**
     * @param build_threads Worker threads for cold table encodes
     *        (0 picks the host's core count, 1 builds serially). The
     *        encoded bytes are identical at any thread count: the
     *        snapshot's slot layout is fixed up front and workers
     *        encode disjoint line ranges in place.
     */
    explicit TableCache(unsigned build_threads = 0);
    ~TableCache();

    /**
     * The materialized contents of `ta` and `tb` under `ecc`, encoding
     * them on first touch. The snapshot lists lines in materialization
     * order (ta fully, then tb), matching what direct materialization
     * into an empty store would produce, so installing it keeps
     * fault-target sampling deterministic.
     */
    std::shared_ptr<const StoreSnapshot>
    materialized(const Table &ta, const Table &tb, EccScheme ecc);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

  private:
    /** Everything the encoded bytes depend on. */
    using Key = std::tuple<LayoutKind, EccScheme, unsigned, // gather
                           Addr, std::uint64_t, unsigned,   // ta
                           Addr, std::uint64_t, unsigned>;  // tb

    struct Entry
    {
        Mutex build;
        std::shared_ptr<const StoreSnapshot> snap SAM_GUARDED_BY(build);
    };

    /** Encode both tables into a fresh snapshot (the cold path). */
    StoreSnapshot buildSnapshot(const Table &ta, const Table &tb,
                                EccScheme ecc);

    Mutex mutex_;
    std::map<Key, std::shared_ptr<Entry>> entries_ SAM_GUARDED_BY(mutex_);
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};

    unsigned buildThreads_;
    /** Lazily created on the first parallel cold build and held across
     *  run() (ThreadPool::run is not reentrant and not concurrently
     *  callable, so simultaneous cold builds of different keys
     *  serialize here -- each still encodes with all workers). */
    Mutex poolMutex_;
    std::unique_ptr<ThreadPool> pool_ SAM_GUARDED_BY(poolMutex_);
};

} // namespace sam

#endif // SAM_SIM_TABLE_CACHE_HH
