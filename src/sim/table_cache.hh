/**
 * @file
 * Process-wide cache of materialized benchmark tables.
 *
 * Materializing a table pair builds every record line's data bytes --
 * historically it also ECC-encoded them, the dominant setup cost of
 * building a simulated system. Snapshots are now lazy-parity
 * (StoreSnapshot::lazyParity): slots hold real data but zero parity,
 * and the installing BackingStore reconstructs codewords on demand for
 * the rare consumers that observe one (fault corruption, decode under
 * injection, capture). The built bytes depend only on (schema, layout,
 * base address, gather factor, parity footprint), not on the design or
 * even the concrete ECC scheme, so a campaign running many designs and
 * sweep points builds each distinct table pair once and shares the
 * immutable blobs across all chipkill schemes alike.
 *
 * Thread-safe: campaign workers share one cache. A key is materialized
 * under its own entry lock, so concurrent first touches of different
 * keys proceed in parallel while duplicate touches of the same key
 * wait and then share.
 */

#ifndef SAM_SIM_TABLE_CACHE_HH
#define SAM_SIM_TABLE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "src/common/thread_annotations.hh"
#include "src/dram/backing_store.hh"
#include "src/dram/timing.hh"
#include "src/imdb/table.hh"

namespace sam {

class ThreadPool;

class TableCache
{
  public:
    /**
     * @param build_threads Worker threads for cold table encodes
     *        (0 picks the host's core count, 1 builds serially). The
     *        encoded bytes are identical at any thread count: the
     *        snapshot's slot layout is fixed up front and workers
     *        encode disjoint line ranges in place.
     */
    explicit TableCache(unsigned build_threads = 0);
    ~TableCache();

    /**
     * The materialized contents of `ta` and `tb` under `ecc`, encoding
     * them on first touch. The snapshot lists lines in materialization
     * order (ta fully, then tb), matching what direct materialization
     * into an empty store would produce, so installing it keeps
     * fault-target sampling deterministic.
     */
    std::shared_ptr<const StoreSnapshot>
    materialized(const Table &ta, const Table &tb, EccScheme ecc);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

  private:
    /**
     * Everything the built bytes depend on. Snapshots are lazy-parity
     * (data bytes only), so the second component is the parity byte
     * footprint rather than the ECC scheme -- all schemes with the
     * same slot stride share one build.
     */
    using Key = std::tuple<LayoutKind, unsigned, unsigned,  // parity, gather
                           Addr, std::uint64_t, unsigned,   // ta
                           Addr, std::uint64_t, unsigned>;  // tb

    struct Entry
    {
        Mutex build;
        std::shared_ptr<const StoreSnapshot> snap SAM_GUARDED_BY(build);
    };

    /** Build both tables into a fresh lazy-parity snapshot (cold path). */
    StoreSnapshot buildSnapshot(const Table &ta, const Table &tb,
                                unsigned parity_bytes);

    Mutex mutex_;
    std::map<Key, std::shared_ptr<Entry>> entries_ SAM_GUARDED_BY(mutex_);
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};

    unsigned buildThreads_;
    /** Lazily created on the first parallel cold build and held across
     *  run() (ThreadPool::run is not reentrant and not concurrently
     *  callable, so simultaneous cold builds of different keys
     *  serialize here -- each still encodes with all workers). */
    Mutex poolMutex_;
    std::unique_ptr<ThreadPool> pool_ SAM_GUARDED_BY(poolMutex_);
};

} // namespace sam

#endif // SAM_SIM_TABLE_CACHE_HH
