#include "src/cache/sector_cache.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/common/bitops.hh"
#include "src/common/logging.hh"

namespace sam {

void
CacheStats::registerIn(StatGroup &group) const
{
    group.addCounter("hits", hits);
    group.addCounter("misses", misses);
    group.addCounter("sectorMisses", sectorMisses,
                     "line present, sector invalid");
    group.addCounter("evictions", evictions);
    group.addCounter("dirtyEvictions", dirtyEvictions);
}

SectorCache::SectorCache(const CacheParams &params)
    : params_(params)
{
    sam_assert(params.sectorBytes > 0 &&
                   kCachelineBytes % params.sectorBytes == 0,
               "bad sector size ", params.sectorBytes);
    sectorsPerLine_ = kCachelineBytes / params.sectorBytes;
    sam_assert(sectorsPerLine_ <= 8, "at most 8 sectors per line");
    fullMask_ = static_cast<std::uint8_t>((1u << sectorsPerLine_) - 1);

    const std::uint64_t lines = params.sizeBytes / kCachelineBytes;
    sam_assert(lines >= params.assoc, "cache smaller than one set");
    sam_assert(params.assoc <= 64, "associativity above 64 unsupported");
    numSets_ = lines / params.assoc;
    sam_assert(isPowerOf2(numSets_), "set count must be a power of two");

    // Deliberately uninitialized (new[] of scalars): a way's metadata
    // and slot bytes are written by fill() before anything reads them,
    // and allocMask_ is what says a way exists.
    const std::size_t ways = numSets_ * params_.assoc;
    allocMask_.assign(numSets_, 0);
    lines_.reset(new Addr[ways]);
    validMask_.reset(new std::uint8_t[ways]);
    dirtyMask_.reset(new std::uint8_t[ways]);
    poisonMask_.reset(new std::uint8_t[ways]);
    lru_.reset(new std::uint64_t[ways]);
    stamp_.reset(new std::uint64_t[ways]);
    arena_.reset(new std::uint8_t[ways * kCachelineBytes]);
}

std::uint8_t
SectorCache::maskFor(unsigned offset, unsigned bytes) const
{
    sam_assert(offset + bytes <= kCachelineBytes, "span exceeds line");
    sam_assert(bytes > 0, "empty span");
    const unsigned first = offset / params_.sectorBytes;
    const unsigned last = (offset + bytes - 1) / params_.sectorBytes;
    std::uint8_t mask = 0;
    for (unsigned s = first; s <= last; ++s)
        mask |= static_cast<std::uint8_t>(1u << s);
    return mask;
}

std::size_t
SectorCache::setIndex(Addr line) const
{
    return (line / kCachelineBytes) & (numSets_ - 1);
}

std::size_t
SectorCache::findWay(Addr line) const
{
    const std::size_t set = setIndex(line);
    const std::size_t base = set * params_.assoc;
    for (std::uint64_t m = allocMask_[set]; m != 0; m &= m - 1) {
        const std::size_t w =
            base + static_cast<std::size_t>(std::countr_zero(m));
        if (lines_[w] == line)
            return w;
    }
    return kNoWay;
}

Writeback
SectorCache::makeWriteback(std::size_t way) const
{
    Writeback wb;
    wb.line = lines_[way];
    wb.dirtyMask = dirtyMask_[way];
    wb.validMask = validMask_[way];
    wb.poisonMask = poisonMask_[way];
    std::memcpy(wb.data.data(), slotData(way), kCachelineBytes);
    return wb;
}

void
SectorCache::freeWay(std::size_t way)
{
    // Clearing the alloc bit is all it takes; the way's metadata is
    // rewritten by the next fill() that claims it.
    allocMask_[way / params_.assoc] &=
        ~(std::uint64_t{1} << (way % params_.assoc));
}

bool
SectorCache::lookup(Addr line, std::uint8_t mask)
{
    const std::size_t w = findWay(line);
    if (w == kNoWay) {
        ++stats_.misses;
        return false;
    }
    if ((validMask_[w] & mask) != mask) {
        ++stats_.misses;
        ++stats_.sectorMisses;
        return false;
    }
    lru_[w] = ++lruClock_;
    ++stats_.hits;
    return true;
}

bool
SectorCache::readHit(Addr line, std::uint8_t mask, unsigned offset,
                     unsigned bytes, std::uint8_t *out, bool &poisoned)
{
    const std::size_t w = findWay(line);
    if (w == kNoWay) {
        ++stats_.misses;
        return false;
    }
    if ((validMask_[w] & mask) != mask) {
        ++stats_.misses;
        ++stats_.sectorMisses;
        return false;
    }
    lru_[w] = ++lruClock_;
    ++stats_.hits;
    std::memcpy(out, slotData(w) + offset, bytes);
    poisoned = (poisonMask_[w] & mask) != 0;
    return true;
}

void
SectorCache::readBytes(Addr line, unsigned offset, unsigned bytes,
                       std::uint8_t *out) const
{
    const std::size_t w = findWay(line);
    sam_assert(w != kNoWay, "readBytes on absent line");
    std::memcpy(out, slotData(w) + offset, bytes);
}

void
SectorCache::writeBytes(Addr line, unsigned offset, unsigned bytes,
                        const std::uint8_t *src)
{
    const std::size_t w = findWay(line);
    sam_assert(w != kNoWay, "writeBytes on absent line");
    std::memcpy(slotData(w) + offset, src, bytes);
    const std::uint8_t mask = maskFor(offset, bytes);
    dirtyMask_[w] |= mask;
    validMask_[w] |= mask;
    // A fully overwritten sector is sound again regardless of what the
    // memory read back; partially covered sectors keep their poison.
    for (unsigned s = 0; s < sectorsPerLine_; ++s) {
        const unsigned s_lo = s * params_.sectorBytes;
        const unsigned s_hi = s_lo + params_.sectorBytes;
        if (offset <= s_lo && offset + bytes >= s_hi)
            poisonMask_[w] &= static_cast<std::uint8_t>(~(1u << s));
    }
    lru_[w] = ++lruClock_;
}

std::optional<Writeback>
SectorCache::fill(Addr line, std::uint8_t mask,
                  const std::uint8_t *data64, bool dirty,
                  std::uint8_t poison_mask)
{
    poison_mask &= mask;
    std::size_t w = findWay(line);
    if (w != kNoWay) {
        // Merge into the resident line, sector by sector (one copy
        // when the mask covers the whole line).
        if (mask == fullMask_) {
            std::memcpy(slotData(w), data64, kCachelineBytes);
        } else {
            for (unsigned s = 0; s < sectorsPerLine_; ++s) {
                if (mask & (1u << s)) {
                    std::memcpy(slotData(w) + s * params_.sectorBytes,
                                data64 + s * params_.sectorBytes,
                                params_.sectorBytes);
                }
            }
        }
        validMask_[w] |= mask;
        if (dirty)
            dirtyMask_[w] |= mask;
        poisonMask_[w] = static_cast<std::uint8_t>(
            (poisonMask_[w] & ~mask) | poison_mask);
        lru_[w] = ++lruClock_;
        return std::nullopt;
    }

    // Allocate: the lowest free way if the set has one, else evict the
    // LRU way (lruClock_ values are unique, so the victim is
    // deterministic).
    const std::size_t set = setIndex(line);
    const std::size_t base = set * params_.assoc;
    const std::uint64_t used = allocMask_[set];
    const std::uint64_t all =
        params_.assoc >= 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << params_.assoc) - 1;
    std::optional<Writeback> victim;
    if (used != all) {
        w = base + static_cast<std::size_t>(std::countr_zero(~used & all));
    } else {
        std::size_t lru_way = kNoWay;
        for (std::uint64_t m = used; m != 0; m &= m - 1) {
            const std::size_t i =
                base + static_cast<std::size_t>(std::countr_zero(m));
            if (lru_way == kNoWay || lru_[i] < lru_[lru_way])
                lru_way = i;
        }
        ++stats_.evictions;
        if (dirtyMask_[lru_way] != 0) {
            ++stats_.dirtyEvictions;
            victim = makeWriteback(lru_way);
        }
        w = lru_way;
    }

    allocMask_[set] |= std::uint64_t{1} << (w - base);
    lines_[w] = line;
    validMask_[w] = mask;
    dirtyMask_[w] = dirty ? mask : 0;
    poisonMask_[w] = poison_mask;
    lru_[w] = ++lruClock_;
    stamp_[w] = lru_[w];
    // Full-mask fills (the line-access common case) skip the zero
    // backdrop: every byte is incoming.
    if (mask == fullMask_) {
        std::memcpy(slotData(w), data64, kCachelineBytes);
    } else {
        // Invalid sectors read as zero if a writeback exposes them.
        std::memset(slotData(w), 0, kCachelineBytes);
        for (unsigned s = 0; s < sectorsPerLine_; ++s) {
            if (mask & (1u << s)) {
                std::memcpy(slotData(w) + s * params_.sectorBytes,
                            data64 + s * params_.sectorBytes,
                            params_.sectorBytes);
            }
        }
    }
    return victim;
}

std::optional<Writeback>
SectorCache::extract(Addr line)
{
    const std::size_t w = findWay(line);
    if (w == kNoWay)
        return std::nullopt;
    Writeback wb = makeWriteback(w);
    freeWay(w);
    return wb;
}

bool
SectorCache::extractMergeInto(Addr line, std::uint8_t *data64,
                              std::uint8_t &valid, std::uint8_t &dirty,
                              std::uint8_t &poison)
{
    const std::size_t w = findWay(line);
    if (w == kNoWay)
        return false;
    const std::uint8_t fresh =
        static_cast<std::uint8_t>(validMask_[w] & ~valid);
    for (unsigned s = 0; s < sectorsPerLine_; ++s) {
        if (fresh & (1u << s)) {
            std::memcpy(data64 + s * params_.sectorBytes,
                        slotData(w) + s * params_.sectorBytes,
                        params_.sectorBytes);
        }
    }
    valid |= fresh;
    poison |= static_cast<std::uint8_t>(poisonMask_[w] & fresh);
    dirty |= dirtyMask_[w];
    freeWay(w);
    return true;
}

std::uint8_t
SectorCache::poisonMask(Addr line) const
{
    const std::size_t w = findWay(line);
    return w != kNoWay ? poisonMask_[w] : 0;
}

void
SectorCache::flush(std::vector<Writeback> &out)
{
    std::size_t order[64];
    for (std::size_t set = 0; set < numSets_; ++set) {
        const std::size_t base = set * params_.assoc;
        std::size_t n = 0;
        for (std::uint64_t m = allocMask_[set]; m != 0; m &= m - 1)
            order[n++] =
                base + static_cast<std::size_t>(std::countr_zero(m));
        // Drain in allocation order, as the vector layout did.
        std::sort(order, order + n, [this](std::size_t a, std::size_t b) {
            return stamp_[a] < stamp_[b];
        });
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t w = order[i];
            if (dirtyMask_[w] != 0)
                out.push_back(makeWriteback(w));
        }
        allocMask_[set] = 0;
    }
}

void
SectorCache::clear()
{
    std::fill(allocMask_.begin(), allocMask_.end(), 0);
}

} // namespace sam
