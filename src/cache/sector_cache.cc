#include "src/cache/sector_cache.hh"

#include <algorithm>
#include <cstring>

#include "src/common/bitops.hh"
#include "src/common/logging.hh"

namespace sam {

void
CacheStats::registerIn(StatGroup &group) const
{
    group.addCounter("hits", hits);
    group.addCounter("misses", misses);
    group.addCounter("sectorMisses", sectorMisses,
                     "line present, sector invalid");
    group.addCounter("evictions", evictions);
    group.addCounter("dirtyEvictions", dirtyEvictions);
}

SectorCache::SectorCache(const CacheParams &params)
    : params_(params)
{
    sam_assert(params.sectorBytes > 0 &&
                   kCachelineBytes % params.sectorBytes == 0,
               "bad sector size ", params.sectorBytes);
    sectorsPerLine_ = kCachelineBytes / params.sectorBytes;
    sam_assert(sectorsPerLine_ <= 8, "at most 8 sectors per line");
    fullMask_ = static_cast<std::uint8_t>((1u << sectorsPerLine_) - 1);

    const std::uint64_t lines = params.sizeBytes / kCachelineBytes;
    sam_assert(lines >= params.assoc, "cache smaller than one set");
    numSets_ = lines / params.assoc;
    sam_assert(isPowerOf2(numSets_), "set count must be a power of two");
    sets_.resize(numSets_);
}

std::uint8_t
SectorCache::maskFor(unsigned offset, unsigned bytes) const
{
    sam_assert(offset + bytes <= kCachelineBytes, "span exceeds line");
    sam_assert(bytes > 0, "empty span");
    const unsigned first = offset / params_.sectorBytes;
    const unsigned last = (offset + bytes - 1) / params_.sectorBytes;
    std::uint8_t mask = 0;
    for (unsigned s = first; s <= last; ++s)
        mask |= static_cast<std::uint8_t>(1u << s);
    return mask;
}

std::size_t
SectorCache::setIndex(Addr line) const
{
    return (line / kCachelineBytes) & (numSets_ - 1);
}

SectorCache::Entry *
SectorCache::find(Addr line)
{
    for (auto &e : sets_[setIndex(line)]) {
        if (e.line == line)
            return &e;
    }
    return nullptr;
}

const SectorCache::Entry *
SectorCache::find(Addr line) const
{
    for (const auto &e : sets_[setIndex(line)]) {
        if (e.line == line)
            return &e;
    }
    return nullptr;
}

bool
SectorCache::lookup(Addr line, std::uint8_t mask)
{
    Entry *e = find(line);
    if (e == nullptr) {
        ++stats_.misses;
        return false;
    }
    if ((e->validMask & mask) != mask) {
        ++stats_.misses;
        ++stats_.sectorMisses;
        return false;
    }
    e->lru = ++lruClock_;
    ++stats_.hits;
    return true;
}

void
SectorCache::readBytes(Addr line, unsigned offset, unsigned bytes,
                       std::uint8_t *out) const
{
    const Entry *e = find(line);
    sam_assert(e != nullptr, "readBytes on absent line");
    std::memcpy(out, e->data.data() + offset, bytes);
}

void
SectorCache::writeBytes(Addr line, unsigned offset, unsigned bytes,
                        const std::uint8_t *src)
{
    Entry *e = find(line);
    sam_assert(e != nullptr, "writeBytes on absent line");
    std::memcpy(e->data.data() + offset, src, bytes);
    const std::uint8_t mask = maskFor(offset, bytes);
    e->dirtyMask |= mask;
    e->validMask |= mask;
    // A fully overwritten sector is sound again regardless of what the
    // memory read back; partially covered sectors keep their poison.
    for (unsigned s = 0; s < sectorsPerLine_; ++s) {
        const unsigned s_lo = s * params_.sectorBytes;
        const unsigned s_hi = s_lo + params_.sectorBytes;
        if (offset <= s_lo && offset + bytes >= s_hi)
            e->poisonMask &= static_cast<std::uint8_t>(~(1u << s));
    }
    e->lru = ++lruClock_;
}

std::optional<Writeback>
SectorCache::fill(Addr line, std::uint8_t mask,
                  const std::uint8_t *data64, bool dirty,
                  std::uint8_t poison_mask)
{
    poison_mask &= mask;
    Entry *e = find(line);
    if (e != nullptr) {
        // Merge into the resident line, sector by sector.
        for (unsigned s = 0; s < sectorsPerLine_; ++s) {
            if (mask & (1u << s)) {
                std::memcpy(e->data.data() + s * params_.sectorBytes,
                            data64 + s * params_.sectorBytes,
                            params_.sectorBytes);
            }
        }
        e->validMask |= mask;
        if (dirty)
            e->dirtyMask |= mask;
        e->poisonMask = static_cast<std::uint8_t>(
            (e->poisonMask & ~mask) | poison_mask);
        e->lru = ++lruClock_;
        return std::nullopt;
    }

    auto &set = sets_[setIndex(line)];
    std::optional<Writeback> victim;
    if (set.size() >= params_.assoc) {
        auto lru_it = std::min_element(
            set.begin(), set.end(),
            [](const Entry &a, const Entry &b) { return a.lru < b.lru; });
        ++stats_.evictions;
        if (lru_it->dirtyMask != 0) {
            ++stats_.dirtyEvictions;
            victim = Writeback{lru_it->line, lru_it->dirtyMask,
                               lru_it->validMask, std::move(lru_it->data),
                               lru_it->poisonMask};
        }
        set.erase(lru_it);
    }

    Entry fresh;
    fresh.line = line;
    fresh.validMask = mask;
    fresh.dirtyMask = dirty ? mask : 0;
    fresh.poisonMask = poison_mask;
    fresh.lru = ++lruClock_;
    fresh.data.resize(kCachelineBytes);
    for (unsigned s = 0; s < sectorsPerLine_; ++s) {
        if (mask & (1u << s)) {
            std::memcpy(fresh.data.data() + s * params_.sectorBytes,
                        data64 + s * params_.sectorBytes,
                        params_.sectorBytes);
        }
    }
    set.push_back(std::move(fresh));
    return victim;
}

std::optional<Writeback>
SectorCache::extract(Addr line)
{
    auto &set = sets_[setIndex(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
        if (it->line == line) {
            Writeback wb{it->line, it->dirtyMask, it->validMask,
                         std::move(it->data), it->poisonMask};
            set.erase(it);
            return wb;
        }
    }
    return std::nullopt;
}

std::uint8_t
SectorCache::poisonMask(Addr line) const
{
    const Entry *e = find(line);
    return e != nullptr ? e->poisonMask : 0;
}

void
SectorCache::flush(std::vector<Writeback> &out)
{
    for (auto &set : sets_) {
        for (auto &e : set) {
            if (e.dirtyMask != 0) {
                out.push_back(Writeback{e.line, e.dirtyMask, e.validMask,
                                        std::move(e.data),
                                        e.poisonMask});
            }
        }
        set.clear();
    }
}

void
SectorCache::clear()
{
    for (auto &set : sets_)
        set.clear();
}

} // namespace sam
