/**
 * @file
 * Three-level (L1/L2/LLC) exclusive write-back cache hierarchy with
 * sector support for stride-mode data (Section 5.1.1, paper Table 2).
 *
 * The hierarchy is purely functional plus hit-latency accounting: the
 * timing of memory-bound traffic is replayed later through the memory
 * controller. Fetches, stride gathers, and writebacks are delegated to
 * a MemBackend implemented by the system simulator, which performs the
 * functional memory operation and records the trace entry.
 */

#ifndef SAM_CACHE_HIERARCHY_HH
#define SAM_CACHE_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/gather.hh"
#include "src/cache/sector_cache.hh"

namespace sam {

/** Memory-side callbacks; implemented by the simulator's core port. */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /**
     * Fetch a full 64B line into `out64` (functional read + trace
     * record). Caller-provided buffer: the hot path allocates nothing.
     */
    virtual void fetchLine(Addr line, std::uint8_t *out64) = 0;

    /**
     * Fetch a stride gather (sload): writes the 64B strided line of G
     * chunks into `out64`.
     */
    virtual void fetchStride(const GatherPlan &plan,
                             std::uint8_t *out64) = 0;

    /** Write back a (possibly partially) dirty line. */
    virtual void writeback(const Writeback &wb) = 0;

    /**
     * Stride write-through (sstore): scatter the 64B stride line to
     * memory immediately (Section 5.1.2's sstore posts through the
     * controller's write queue rather than lingering as per-line dirty
     * state).
     */
    virtual void writeStride(const GatherPlan &plan,
                             const std::uint8_t *line64) = 0;

    // ----- RAS poison reporting (optional) ---------------------------
    /** Whether the last fetchLine() returned poisoned data. */
    virtual bool lastFetchPoisoned() const { return false; }

    /**
     * Per-source-line poison bits of the last fetchStride() (bit i =
     * source line i of the gather).
     */
    virtual std::uint32_t lastStridePoisonBits() const { return 0; }
};

/** Outcome of a hierarchy access. */
struct HierResult
{
    Cycle delay = 0;        ///< Core-visible latency (hit path).
    bool memTouched = false;///< A memory request was generated.
    bool poisoned = false;  ///< Returned data includes poisoned bytes.
    /** Stride reads: bit i set when chunk i of the line is poisoned. */
    std::uint32_t poisonBits = 0;
};

class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheParams &l1, const CacheParams &l2,
                   const CacheParams &llc, MemBackend &backend);

    /** Regular load of `bytes` (<= sector) at `addr`. */
    HierResult read(Addr addr, unsigned bytes, std::uint8_t *out);

    /** Regular store of `bytes` at `addr` (write-allocate). */
    HierResult write(Addr addr, const std::uint8_t *src, unsigned bytes);

    /**
     * Stride load: returns the 64B strided line (G chunks). Hits when
     * every source line's chunk sector is resident; otherwise issues
     * one stride fetch.
     */
    HierResult strideRead(const GatherPlan &plan, unsigned unit,
                          std::uint8_t *out64);

    /**
     * Stride store (sstore): writes through to memory as one strided
     * transfer and refreshes the cached copies clean.
     */
    HierResult strideWrite(const GatherPlan &plan, unsigned unit,
                           const std::uint8_t *src64);

    /**
     * Write-combining store: allocates the full line without a
     * read-for-ownership fetch (bulk-insert / non-temporal stores).
     * Unwritten bytes of a freshly allocated line read as zero.
     */
    HierResult writeAllocate(Addr addr, const std::uint8_t *src,
                             unsigned bytes);

    /** Write back all dirty lines and empty the hierarchy. */
    void flush();

    const SectorCache &level(unsigned i) const { return *levels_[i]; }

  private:
    /** Fill into level `lvl`, cascading evictions downward. */
    void fillLevel(unsigned lvl, Addr line, std::uint8_t mask,
                   const std::uint8_t *data64, std::uint8_t dirty_mask,
                   std::uint8_t poison_mask = 0);

    /**
     * Extract `line` from every level and merge into a single record
     * (upper levels win on overlap). Returns merged valid mask.
     */
    std::uint8_t collect(Addr line, std::uint8_t &dirty_mask,
                         std::uint8_t *data64,
                         std::uint8_t *poison_mask = nullptr);

    /** Sector mask fully covered by a byte span of a line. */
    std::uint8_t fullCoverMask(unsigned offset, unsigned bytes) const;

    /**
     * Ensure the `mask` sectors of `line` are resident in L1.
     * `from_lvl` skips levels the caller has already probed (and
     * whose stats are therefore already counted) with a fused miss.
     */
    HierResult ensureLine(Addr line, std::uint8_t mask,
                          unsigned from_lvl = 0);

    std::array<SectorCache *, 3> levels_;
    SectorCache l1_;
    SectorCache l2_;
    SectorCache llc_;
    MemBackend &backend_;
};

} // namespace sam

#endif // SAM_CACHE_HIERARCHY_HH
