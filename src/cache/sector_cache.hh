/**
 * @file
 * Set-associative write-back sector cache (Section 5.1.1). Each 64B
 * line is divided into sectors of the configured stride unit; every
 * sector has its own valid and dirty bit so stride-mode fills can cache
 * one chunk of each of G lines without fabricating the rest.
 */

#ifndef SAM_CACHE_SECTOR_CACHE_HH
#define SAM_CACHE_SECTOR_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/stats.hh"
#include "src/common/types.hh"

namespace sam {

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    /** Sector size in bytes; 64 disables sectoring. */
    unsigned sectorBytes = 64;
    /** Hit latency in memory-bus cycles. */
    Cycle hitLatency = 1;
};

/** A dirty line leaving the hierarchy toward memory. */
struct Writeback
{
    Addr line = 0;
    std::uint8_t dirtyMask = 0;
    std::uint8_t validMask = 0;
    std::vector<std::uint8_t> data;  ///< 64B (garbage in invalid sectors).
    /** Sectors whose data is RAS-poisoned (uncorrectable memory). */
    std::uint8_t poisonMask = 0;
};

/** Per-cache counters. */
struct CacheStats
{
    Counter hits;
    Counter misses;
    Counter sectorMisses;  ///< Line present but sector invalid.
    Counter evictions;
    Counter dirtyEvictions;

    void registerIn(StatGroup &group) const;
};

/**
 * One cache level. Stores real data bytes; LRU replacement; write-back.
 * The hierarchy above it handles fills and eviction cascades.
 */
class SectorCache
{
  public:
    explicit SectorCache(const CacheParams &params);

    const CacheParams &params() const { return params_; }
    unsigned sectorsPerLine() const { return sectorsPerLine_; }
    std::uint8_t fullMask() const { return fullMask_; }

    /** Sector mask covering bytes [offset, offset + bytes) of a line. */
    std::uint8_t maskFor(unsigned offset, unsigned bytes) const;

    /**
     * Look up `line`; true if present with all `mask` sectors valid.
     * Updates LRU on hit. Line-present-but-sector-invalid counts as a
     * sector miss.
     */
    bool lookup(Addr line, std::uint8_t mask);

    /** Read bytes from a resident line (must be valid per lookup). */
    void readBytes(Addr line, unsigned offset, unsigned bytes,
                   std::uint8_t *out) const;

    /**
     * Write bytes into a resident line and mark its sectors dirty.
     * Sectors the write fully covers shed any poison (overwritten
     * data is sound again); partially covered poisoned sectors stay
     * poisoned.
     */
    void writeBytes(Addr line, unsigned offset, unsigned bytes,
                    const std::uint8_t *src);

    /**
     * Insert or merge `mask` sectors of `line`. `poison_mask` marks
     * which of the incoming sectors carry poisoned data (replacing the
     * poison state of merged sectors). Returns the evicted victim if
     * an allocation displaced a line.
     */
    std::optional<Writeback> fill(Addr line, std::uint8_t mask,
                                  const std::uint8_t *data64,
                                  bool dirty,
                                  std::uint8_t poison_mask = 0);

    /** Poisoned-sector mask of a resident line (0 when absent). */
    std::uint8_t poisonMask(Addr line) const;

    /** Remove `line` (for exclusive-hierarchy promotion). */
    std::optional<Writeback> extract(Addr line);

    /** Drain every line; dirty ones are appended to `out`. */
    void flush(std::vector<Writeback> &out);

    /** Drop all contents without writebacks (cold reset). */
    void clear();

    const CacheStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        Addr line = kInvalidAddr;
        std::uint8_t validMask = 0;
        std::uint8_t dirtyMask = 0;
        std::uint8_t poisonMask = 0;
        std::uint64_t lru = 0;
        std::vector<std::uint8_t> data;
    };

    std::size_t setIndex(Addr line) const;
    Entry *find(Addr line);
    const Entry *find(Addr line) const;

    CacheParams params_;
    unsigned sectorsPerLine_;
    std::uint8_t fullMask_;
    std::size_t numSets_;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t lruClock_ = 0;
    CacheStats stats_;
};

} // namespace sam

#endif // SAM_CACHE_SECTOR_CACHE_HH
