/**
 * @file
 * Set-associative write-back sector cache (Section 5.1.1). Each 64B
 * line is divided into sectors of the configured stride unit; every
 * sector has its own valid and dirty bit so stride-mode fills can cache
 * one chunk of each of G lines without fabricating the rest.
 */

#ifndef SAM_CACHE_SECTOR_CACHE_HH
#define SAM_CACHE_SECTOR_CACHE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/stats.hh"
#include "src/common/types.hh"

namespace sam {

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    /** Sector size in bytes; 64 disables sectoring. */
    unsigned sectorBytes = 64;
    /** Hit latency in memory-bus cycles. */
    Cycle hitLatency = 1;
};

/** A dirty line leaving the hierarchy toward memory. */
struct Writeback
{
    Addr line = 0;
    std::uint8_t dirtyMask = 0;
    std::uint8_t validMask = 0;
    /** 64B (zero in never-valid sectors). Fixed-size so producing a
     *  writeback never allocates. */
    std::array<std::uint8_t, kCachelineBytes> data;
    /** Sectors whose data is RAS-poisoned (uncorrectable memory). */
    std::uint8_t poisonMask = 0;
};

/** Per-cache counters. */
struct CacheStats
{
    Counter hits;
    Counter misses;
    Counter sectorMisses;  ///< Line present but sector invalid.
    Counter evictions;
    Counter dirtyEvictions;

    void registerIn(StatGroup &group) const;
};

/**
 * One cache level. Stores real data bytes; LRU replacement; write-back.
 * The hierarchy above it handles fills and eviction cascades.
 */
class SectorCache
{
  public:
    explicit SectorCache(const CacheParams &params);

    const CacheParams &params() const { return params_; }
    unsigned sectorsPerLine() const { return sectorsPerLine_; }
    std::uint8_t fullMask() const { return fullMask_; }

    /** Sector mask covering bytes [offset, offset + bytes) of a line. */
    std::uint8_t maskFor(unsigned offset, unsigned bytes) const;

    /**
     * Look up `line`; true if present with all `mask` sectors valid.
     * Updates LRU on hit. Line-present-but-sector-invalid counts as a
     * sector miss.
     */
    bool lookup(Addr line, std::uint8_t mask);

    /**
     * Fused lookup + readBytes + poison probe: one tag search instead
     * of three. On a hit (all `mask` sectors valid) copies bytes
     * [offset, offset + bytes) into `out`, reports whether any `mask`
     * sector is poisoned, and updates LRU; stats are counted exactly
     * as lookup() would, hit or miss.
     */
    bool readHit(Addr line, std::uint8_t mask, unsigned offset,
                 unsigned bytes, std::uint8_t *out, bool &poisoned);

    /** Read bytes from a resident line (must be valid per lookup). */
    void readBytes(Addr line, unsigned offset, unsigned bytes,
                   std::uint8_t *out) const;

    /**
     * Write bytes into a resident line and mark its sectors dirty.
     * Sectors the write fully covers shed any poison (overwritten
     * data is sound again); partially covered poisoned sectors stay
     * poisoned.
     */
    void writeBytes(Addr line, unsigned offset, unsigned bytes,
                    const std::uint8_t *src);

    /**
     * Insert or merge `mask` sectors of `line`. `poison_mask` marks
     * which of the incoming sectors carry poisoned data (replacing the
     * poison state of merged sectors). Returns the evicted victim if
     * an allocation displaced a line.
     */
    std::optional<Writeback> fill(Addr line, std::uint8_t mask,
                                  const std::uint8_t *data64,
                                  bool dirty,
                                  std::uint8_t poison_mask = 0);

    /** Poisoned-sector mask of a resident line (0 when absent). */
    std::uint8_t poisonMask(Addr line) const;

    /** Remove `line` (for exclusive-hierarchy promotion). */
    std::optional<Writeback> extract(Addr line);

    /**
     * Remove `line` and merge it into a collect buffer in place: each
     * resident sector not already set in `valid` is copied into
     * `data64` and its poison bit accumulated; `dirty` picks up the
     * whole line's dirty mask. Equivalent to extract() followed by a
     * sector merge, without staging the bytes through a Writeback.
     * Returns false (buffers untouched) when the line is absent.
     */
    bool extractMergeInto(Addr line, std::uint8_t *data64,
                          std::uint8_t &valid, std::uint8_t &dirty,
                          std::uint8_t &poison);

    /** Drain every line; dirty ones are appended to `out`. */
    void flush(std::vector<Writeback> &out);

    /** Drop all contents without writebacks (cold reset). */
    void clear();

    const CacheStats &stats() const { return stats_; }

  private:
    /** Way slots are flat SoA arrays indexed set * assoc + way; a
     *  set's occupied ways are the set bits of its allocMask_ word.
     *  Cache data lives in one contiguous arena (64B per way), so
     *  fill / extract / flush are memcpy-only -- no per-entry heap
     *  traffic. */
    static constexpr std::size_t kNoWay = ~std::size_t{0};

    std::size_t setIndex(Addr line) const;
    std::size_t findWay(Addr line) const;
    std::uint8_t *slotData(std::size_t way)
    {
        return arena_.get() + way * kCachelineBytes;
    }
    const std::uint8_t *slotData(std::size_t way) const
    {
        return arena_.get() + way * kCachelineBytes;
    }
    Writeback makeWriteback(std::size_t way) const;
    void freeWay(std::size_t way);

    CacheParams params_;
    unsigned sectorsPerLine_;
    std::uint8_t fullMask_;
    std::size_t numSets_;
    /**
     * One bit per way of each set: which ways hold a line. This is
     * the only per-way state zeroed at construction -- every other
     * array below is allocated uninitialized and written at fill
     * before it is read, so building a cold cache costs O(sets), not
     * O(capacity). Systems are constructed per replayed design point,
     * which made eager multi-MB zeroing a measurable setup cost.
     */
    std::vector<std::uint64_t> allocMask_;
    std::unique_ptr<Addr[]> lines_;
    std::unique_ptr<std::uint8_t[]> validMask_;
    std::unique_ptr<std::uint8_t[]> dirtyMask_;
    std::unique_ptr<std::uint8_t[]> poisonMask_;
    std::unique_ptr<std::uint64_t[]> lru_;
    /** Allocation stamp per way: flush() drains a set's ways in stamp
     *  order, reproducing the insertion-ordered drain of the previous
     *  vector-of-entries layout (drain writebacks are timed requests,
     *  so their order is observable). */
    std::unique_ptr<std::uint64_t[]> stamp_;
    std::unique_ptr<std::uint8_t[]> arena_;
    std::uint64_t lruClock_ = 0;
    CacheStats stats_;
};

} // namespace sam

#endif // SAM_CACHE_SECTOR_CACHE_HH
