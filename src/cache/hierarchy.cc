#include "src/cache/hierarchy.hh"

#include <cstring>

#include "src/common/logging.hh"

namespace sam {

CacheHierarchy::CacheHierarchy(const CacheParams &l1,
                               const CacheParams &l2,
                               const CacheParams &llc,
                               MemBackend &backend)
    : l1_(l1), l2_(l2), llc_(llc), backend_(backend)
{
    levels_ = {&l1_, &l2_, &llc_};
    sam_assert(l1.sectorBytes == l2.sectorBytes &&
                   l2.sectorBytes == llc.sectorBytes,
               "all levels must share the sector size");
}

void
CacheHierarchy::fillLevel(unsigned lvl, Addr line, std::uint8_t mask,
                          const std::uint8_t *data64,
                          std::uint8_t dirty_mask)
{
    auto victim = levels_[lvl]->fill(line, mask, data64,
                                     dirty_mask != 0);
    // fill() marks all inserted sectors dirty when dirty=true; tighten
    // to the actual dirty mask by re-merging is unnecessary at this
    // fidelity (over-writeback of a few clean sectors is harmless: the
    // data is identical).
    if (!victim)
        return;
    if (lvl + 1 < levels_.size()) {
        fillLevel(lvl + 1, victim->line, victim->validMask,
                  victim->data.data(), victim->dirtyMask);
    } else {
        backend_.writeback(*victim);
    }
}

std::uint8_t
CacheHierarchy::collect(Addr line, std::uint8_t &dirty_mask,
                        std::uint8_t *data64)
{
    std::uint8_t valid = 0;
    dirty_mask = 0;
    const unsigned sector_bytes = l1_.params().sectorBytes;
    for (auto *cache : levels_) {
        auto wb = cache->extract(line);
        if (!wb)
            continue;
        for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
            const std::uint8_t bit = static_cast<std::uint8_t>(1u << s);
            if ((wb->validMask & bit) && !(valid & bit)) {
                std::memcpy(data64 + s * sector_bytes,
                            wb->data.data() + s * sector_bytes,
                            sector_bytes);
                valid |= bit;
            }
        }
        dirty_mask |= wb->dirtyMask;
    }
    return valid;
}

HierResult
CacheHierarchy::ensureLine(Addr line, std::uint8_t mask)
{
    HierResult res;
    for (unsigned lvl = 0; lvl < levels_.size(); ++lvl) {
        if (levels_[lvl]->lookup(line, mask)) {
            res.delay = levels_[lvl]->params().hitLatency;
            if (lvl > 0) {
                // Exclusive promotion to L1.
                std::uint8_t data[kCachelineBytes];
                std::uint8_t dirty = 0;
                const std::uint8_t valid = collect(line, dirty, data);
                fillLevel(0, line, valid, data, dirty);
            }
            return res;
        }
    }

    // Full miss (or sector miss): fetch the whole line, overlaying any
    // resident sectors (which may be dirtier than memory).
    std::uint8_t cached[kCachelineBytes];
    std::uint8_t dirty = 0;
    const std::uint8_t cached_valid = collect(line, dirty, cached);

    const auto fresh = backend_.fetchLine(line);
    sam_assert(fresh.size() == kCachelineBytes, "short line fetch");
    std::uint8_t merged[kCachelineBytes];
    std::memcpy(merged, fresh.data(), kCachelineBytes);
    const unsigned sector_bytes = l1_.params().sectorBytes;
    for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
        if (cached_valid & (1u << s)) {
            std::memcpy(merged + s * sector_bytes,
                        cached + s * sector_bytes, sector_bytes);
        }
    }
    fillLevel(0, line, l1_.fullMask(), merged, dirty);
    res.delay = llc_.params().hitLatency;
    res.memTouched = true;
    return res;
}

HierResult
CacheHierarchy::read(Addr addr, unsigned bytes, std::uint8_t *out)
{
    const Addr line = addr & ~Addr{kCachelineBytes - 1};
    const unsigned offset = static_cast<unsigned>(addr - line);
    const HierResult res = ensureLine(line, l1_.maskFor(offset, bytes));
    l1_.readBytes(line, offset, bytes, out);
    return res;
}

HierResult
CacheHierarchy::write(Addr addr, const std::uint8_t *src, unsigned bytes)
{
    const Addr line = addr & ~Addr{kCachelineBytes - 1};
    const unsigned offset = static_cast<unsigned>(addr - line);
    const unsigned sector_bytes = l1_.params().sectorBytes;

    const bool sector_aligned = offset % sector_bytes == 0 &&
                                bytes % sector_bytes == 0;
    if (sector_aligned) {
        // The write fully covers its sectors: allocate without fetching
        // (a sector-cache benefit; plain caches never take this path
        // for sub-line stores since their only sector is the line).
        std::uint8_t dirty = 0;
        std::uint8_t cached[kCachelineBytes];
        const std::uint8_t valid = collect(line, dirty, cached);
        // Overlay previous content, then the new store.
        std::uint8_t merged[kCachelineBytes] = {};
        for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
            if (valid & (1u << s)) {
                std::memcpy(merged + s * sector_bytes,
                            cached + s * sector_bytes, sector_bytes);
            }
        }
        std::memcpy(merged + offset, src, bytes);
        const std::uint8_t store_mask = l1_.maskFor(offset, bytes);
        fillLevel(0, line, static_cast<std::uint8_t>(valid | store_mask),
                  merged,
                  static_cast<std::uint8_t>(dirty | store_mask));
        return {l1_.params().hitLatency, false};
    }

    // Partial-sector store: read-for-ownership then merge.
    HierResult res = ensureLine(line, l1_.maskFor(offset, bytes));
    l1_.writeBytes(line, offset, bytes, src);
    return res;
}

HierResult
CacheHierarchy::strideRead(const GatherPlan &plan, unsigned unit,
                           std::uint8_t *out64)
{
    const std::uint8_t sector_bit =
        static_cast<std::uint8_t>(1u << plan.sector);
    const unsigned g = static_cast<unsigned>(plan.lines.size());
    sam_assert(g * unit == kCachelineBytes, "bad gather geometry");

    bool all_hit = true;
    Cycle worst = 0;
    for (Addr line : plan.lines) {
        bool hit = false;
        for (auto *cache : levels_) {
            if (cache->lookup(line, sector_bit)) {
                worst = std::max(worst, cache->params().hitLatency);
                hit = true;
                break;
            }
        }
        all_hit = all_hit && hit;
        if (!all_hit)
            break;
    }

    if (all_hit) {
        for (unsigned i = 0; i < g; ++i) {
            for (auto *cache : levels_) {
                if (cache->lookup(plan.lines[i], sector_bit)) {
                    cache->readBytes(plan.lines[i], plan.sector * unit,
                                     unit, out64 + i * unit);
                    break;
                }
            }
        }
        return {worst, false};
    }

    // One sload fetches all G chunks; overlay any dirtier cached chunk.
    const auto fetched = backend_.fetchStride(plan);
    sam_assert(fetched.size() == kCachelineBytes, "short stride fetch");
    std::memcpy(out64, fetched.data(), kCachelineBytes);

    for (unsigned i = 0; i < g; ++i) {
        const Addr line = plan.lines[i];
        std::uint8_t dirty = 0;
        std::uint8_t cached[kCachelineBytes];
        const std::uint8_t valid = collect(line, dirty, cached);
        std::uint8_t buf[kCachelineBytes] = {};
        std::uint8_t valid_now = valid;
        const unsigned sector_bytes = l1_.params().sectorBytes;
        for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
            if (valid & (1u << s)) {
                std::memcpy(buf + s * sector_bytes,
                            cached + s * sector_bytes, sector_bytes);
            }
        }
        if (dirty & sector_bit) {
            // Cache is newer than memory for this chunk.
            std::memcpy(out64 + i * unit, buf + plan.sector * unit,
                        unit);
        } else {
            std::memcpy(buf + plan.sector * unit, out64 + i * unit,
                        unit);
            valid_now |= sector_bit;
        }
        fillLevel(0, line, static_cast<std::uint8_t>(valid_now |
                                                     sector_bit),
                  buf, dirty);
    }
    return {llc_.params().hitLatency, true};
}

HierResult
CacheHierarchy::strideWrite(const GatherPlan &plan, unsigned unit,
                            const std::uint8_t *src64)
{
    const std::uint8_t sector_bit =
        static_cast<std::uint8_t>(1u << plan.sector);
    const unsigned g = static_cast<unsigned>(plan.lines.size());
    const unsigned sector_bytes = l1_.params().sectorBytes;
    sam_assert(unit == sector_bytes,
               "stride writes require sector-granular caches");

    for (unsigned i = 0; i < g; ++i) {
        const Addr line = plan.lines[i];
        std::uint8_t dirty = 0;
        std::uint8_t cached[kCachelineBytes];
        const std::uint8_t valid = collect(line, dirty, cached);
        std::uint8_t buf[kCachelineBytes] = {};
        for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
            if (valid & (1u << s)) {
                std::memcpy(buf + s * sector_bytes,
                            cached + s * sector_bytes, sector_bytes);
            }
        }
        std::memcpy(buf + plan.sector * unit, src64 + i * unit, unit);
        // Written through below: this sector is clean in the caches.
        fillLevel(0, line,
                  static_cast<std::uint8_t>(valid | sector_bit), buf,
                  static_cast<std::uint8_t>(dirty &
                                            ~unsigned{sector_bit}));
    }
    backend_.writeStride(plan, src64);
    return {l1_.params().hitLatency, true};
}

HierResult
CacheHierarchy::writeAllocate(Addr addr, const std::uint8_t *src,
                              unsigned bytes)
{
    const Addr line = addr & ~Addr{kCachelineBytes - 1};
    const unsigned offset = static_cast<unsigned>(addr - line);
    std::uint8_t dirty = 0;
    std::uint8_t cached[kCachelineBytes];
    const std::uint8_t valid = collect(line, dirty, cached);
    std::uint8_t merged[kCachelineBytes] = {};
    const unsigned sector_bytes = l1_.params().sectorBytes;
    for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
        if (valid & (1u << s)) {
            std::memcpy(merged + s * sector_bytes,
                        cached + s * sector_bytes, sector_bytes);
        }
    }
    std::memcpy(merged + offset, src, bytes);
    fillLevel(0, line, l1_.fullMask(), merged, l1_.fullMask());
    return {l1_.params().hitLatency, false};
}

void
CacheHierarchy::flush()
{
    std::vector<Writeback> wbs;
    for (auto *cache : levels_)
        cache->flush(wbs);
    for (const auto &wb : wbs)
        backend_.writeback(wb);
}

} // namespace sam
