#include "src/cache/hierarchy.hh"

#include <cstring>

#include "src/common/logging.hh"

namespace sam {

CacheHierarchy::CacheHierarchy(const CacheParams &l1,
                               const CacheParams &l2,
                               const CacheParams &llc,
                               MemBackend &backend)
    : l1_(l1), l2_(l2), llc_(llc), backend_(backend)
{
    levels_ = {&l1_, &l2_, &llc_};
    sam_assert(l1.sectorBytes == l2.sectorBytes &&
                   l2.sectorBytes == llc.sectorBytes,
               "all levels must share the sector size");
}

void
CacheHierarchy::fillLevel(unsigned lvl, Addr line, std::uint8_t mask,
                          const std::uint8_t *data64,
                          std::uint8_t dirty_mask,
                          std::uint8_t poison_mask)
{
    auto victim = levels_[lvl]->fill(line, mask, data64,
                                     dirty_mask != 0, poison_mask);
    // fill() marks all inserted sectors dirty when dirty=true; tighten
    // to the actual dirty mask by re-merging is unnecessary at this
    // fidelity (over-writeback of a few clean sectors is harmless: the
    // data is identical).
    if (!victim)
        return;
    if (lvl + 1 < levels_.size()) {
        fillLevel(lvl + 1, victim->line, victim->validMask,
                  victim->data.data(), victim->dirtyMask,
                  victim->poisonMask);
    } else {
        backend_.writeback(*victim);
    }
}

std::uint8_t
CacheHierarchy::collect(Addr line, std::uint8_t &dirty_mask,
                        std::uint8_t *data64, std::uint8_t *poison_mask)
{
    std::uint8_t valid = 0;
    std::uint8_t poison = 0;
    dirty_mask = 0;
    // Probing top-down makes upper levels win on sector overlap.
    for (auto *cache : levels_)
        cache->extractMergeInto(line, data64, valid, dirty_mask, poison);
    if (poison_mask != nullptr)
        *poison_mask = poison;
    return valid;
}

std::uint8_t
CacheHierarchy::fullCoverMask(unsigned offset, unsigned bytes) const
{
    const unsigned sector_bytes = l1_.params().sectorBytes;
    std::uint8_t mask = 0;
    for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
        const unsigned lo = s * sector_bytes;
        if (offset <= lo && offset + bytes >= lo + sector_bytes)
            mask |= static_cast<std::uint8_t>(1u << s);
    }
    return mask;
}

HierResult
CacheHierarchy::ensureLine(Addr line, std::uint8_t mask,
                          unsigned from_lvl)
{
    HierResult res;
    for (unsigned lvl = from_lvl; lvl < levels_.size(); ++lvl) {
        if (levels_[lvl]->lookup(line, mask)) {
            res.delay = levels_[lvl]->params().hitLatency;
            if (lvl > 0) {
                // Exclusive promotion to L1.
                std::uint8_t data[kCachelineBytes];
                std::uint8_t dirty = 0;
                std::uint8_t poison = 0;
                const std::uint8_t valid =
                    collect(line, dirty, data, &poison);
                fillLevel(0, line, valid, data, dirty, poison);
            }
            return res;
        }
    }

    // Full miss (or sector miss): fetch the whole line, then overlay
    // any resident sectors directly (which may be dirtier than
    // memory). The caches issue no requests and draw no fault-model
    // randomness, so merging after the fetch is equivalent to
    // collecting first.
    std::uint8_t merged[kCachelineBytes];
    backend_.fetchLine(line, merged);
    std::uint8_t dirty = 0;
    std::uint8_t cached_poison = 0;
    const std::uint8_t cached_valid =
        collect(line, dirty, merged, &cached_poison);
    // A poisoned fetch taints the fetched sectors; resident sectors
    // keep their own (possibly clean) state since they overlay the
    // fetched bytes.
    const std::uint8_t fetch_poison = backend_.lastFetchPoisoned()
        ? static_cast<std::uint8_t>(l1_.fullMask() & ~cached_valid)
        : 0;
    fillLevel(0, line, l1_.fullMask(), merged, dirty,
              static_cast<std::uint8_t>(cached_poison | fetch_poison));
    res.delay = llc_.params().hitLatency;
    res.memTouched = true;
    return res;
}

HierResult
CacheHierarchy::read(Addr addr, unsigned bytes, std::uint8_t *out)
{
    const Addr line = addr & ~Addr{kCachelineBytes - 1};
    const unsigned offset = static_cast<unsigned>(addr - line);
    const std::uint8_t mask = l1_.maskFor(offset, bytes);
    // One fused probe covers the common case; readHit counted the L1
    // miss otherwise, so the slow path resumes the search at L2.
    bool poisoned = false;
    if (l1_.readHit(line, mask, offset, bytes, out, poisoned)) {
        HierResult res;
        res.delay = l1_.params().hitLatency;
        res.poisoned = poisoned;
        return res;
    }
    HierResult res = ensureLine(line, mask, /*from_lvl=*/1);
    l1_.readBytes(line, offset, bytes, out);
    res.poisoned = (l1_.poisonMask(line) & mask) != 0;
    return res;
}

HierResult
CacheHierarchy::write(Addr addr, const std::uint8_t *src, unsigned bytes)
{
    const Addr line = addr & ~Addr{kCachelineBytes - 1};
    const unsigned offset = static_cast<unsigned>(addr - line);
    const unsigned sector_bytes = l1_.params().sectorBytes;

    const bool sector_aligned = offset % sector_bytes == 0 &&
                                bytes % sector_bytes == 0;
    if (sector_aligned) {
        // The write fully covers its sectors: allocate without fetching
        // (a sector-cache benefit; plain caches never take this path
        // for sub-line stores since their only sector is the line).
        std::uint8_t dirty = 0;
        std::uint8_t poison = 0;
        std::uint8_t cached[kCachelineBytes];
        const std::uint8_t valid = collect(line, dirty, cached, &poison);
        // Overlay previous content, then the new store.
        std::uint8_t merged[kCachelineBytes] = {};
        for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
            if (valid & (1u << s)) {
                std::memcpy(merged + s * sector_bytes,
                            cached + s * sector_bytes, sector_bytes);
            }
        }
        std::memcpy(merged + offset, src, bytes);
        const std::uint8_t store_mask = l1_.maskFor(offset, bytes);
        fillLevel(0, line, static_cast<std::uint8_t>(valid | store_mask),
                  merged,
                  static_cast<std::uint8_t>(dirty | store_mask),
                  static_cast<std::uint8_t>(poison & ~store_mask));
        return {l1_.params().hitLatency, false};
    }

    // Partial-sector store: read-for-ownership then merge.
    HierResult res = ensureLine(line, l1_.maskFor(offset, bytes));
    l1_.writeBytes(line, offset, bytes, src);
    return res;
}

HierResult
CacheHierarchy::strideRead(const GatherPlan &plan, unsigned unit,
                           std::uint8_t *out64)
{
    const std::uint8_t sector_bit =
        static_cast<std::uint8_t>(1u << plan.sector);
    const unsigned g = static_cast<unsigned>(plan.lines.size());
    sam_assert(g * unit == kCachelineBytes, "bad gather geometry");

    bool all_hit = true;
    Cycle worst = 0;
    for (Addr line : plan.lines) {
        bool hit = false;
        for (auto *cache : levels_) {
            if (cache->lookup(line, sector_bit)) {
                worst = std::max(worst, cache->params().hitLatency);
                hit = true;
                break;
            }
        }
        all_hit = all_hit && hit;
        if (!all_hit)
            break;
    }

    if (all_hit) {
        HierResult res{worst, false};
        for (unsigned i = 0; i < g; ++i) {
            for (auto *cache : levels_) {
                bool poisoned = false;
                if (cache->readHit(plan.lines[i], sector_bit,
                                   plan.sector * unit, unit,
                                   out64 + i * unit, poisoned)) {
                    if (poisoned) {
                        res.poisoned = true;
                        res.poisonBits |= std::uint32_t{1} << i;
                    }
                    break;
                }
            }
        }
        return res;
    }

    // One sload fetches all G chunks; overlay any dirtier cached chunk.
    backend_.fetchStride(plan, out64);
    const std::uint32_t fetch_poison = backend_.lastStridePoisonBits();

    HierResult res{llc_.params().hitLatency, true};
    for (unsigned i = 0; i < g; ++i) {
        const Addr line = plan.lines[i];
        std::uint8_t dirty = 0;
        std::uint8_t poison = 0;
        std::uint8_t cached[kCachelineBytes];
        const std::uint8_t valid = collect(line, dirty, cached, &poison);
        std::uint8_t buf[kCachelineBytes] = {};
        std::uint8_t valid_now = valid;
        std::uint8_t chunk_poison;
        const unsigned sector_bytes = l1_.params().sectorBytes;
        for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
            if (valid & (1u << s)) {
                std::memcpy(buf + s * sector_bytes,
                            cached + s * sector_bytes, sector_bytes);
            }
        }
        if (dirty & sector_bit) {
            // Cache is newer than memory for this chunk.
            std::memcpy(out64 + i * unit, buf + plan.sector * unit,
                        unit);
            chunk_poison = static_cast<std::uint8_t>(poison & sector_bit);
        } else {
            std::memcpy(buf + plan.sector * unit, out64 + i * unit,
                        unit);
            valid_now |= sector_bit;
            chunk_poison = (fetch_poison >> i) & 1u ? sector_bit
                                                    : std::uint8_t{0};
        }
        if (chunk_poison != 0) {
            res.poisoned = true;
            res.poisonBits |= std::uint32_t{1} << i;
        }
        fillLevel(0, line, static_cast<std::uint8_t>(valid_now |
                                                     sector_bit),
                  buf, dirty,
                  static_cast<std::uint8_t>((poison & ~sector_bit) |
                                            chunk_poison));
    }
    return res;
}

HierResult
CacheHierarchy::strideWrite(const GatherPlan &plan, unsigned unit,
                            const std::uint8_t *src64)
{
    const std::uint8_t sector_bit =
        static_cast<std::uint8_t>(1u << plan.sector);
    const unsigned g = static_cast<unsigned>(plan.lines.size());
    const unsigned sector_bytes = l1_.params().sectorBytes;
    sam_assert(unit == sector_bytes,
               "stride writes require sector-granular caches");

    for (unsigned i = 0; i < g; ++i) {
        const Addr line = plan.lines[i];
        std::uint8_t dirty = 0;
        std::uint8_t poison = 0;
        std::uint8_t cached[kCachelineBytes];
        const std::uint8_t valid = collect(line, dirty, cached, &poison);
        std::uint8_t buf[kCachelineBytes] = {};
        for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
            if (valid & (1u << s)) {
                std::memcpy(buf + s * sector_bytes,
                            cached + s * sector_bytes, sector_bytes);
            }
        }
        std::memcpy(buf + plan.sector * unit, src64 + i * unit, unit);
        // Written through below: this sector is clean in the caches.
        fillLevel(0, line,
                  static_cast<std::uint8_t>(valid | sector_bit), buf,
                  static_cast<std::uint8_t>(dirty &
                                            ~unsigned{sector_bit}),
                  static_cast<std::uint8_t>(poison & ~sector_bit));
    }
    backend_.writeStride(plan, src64);
    return {l1_.params().hitLatency, true};
}

HierResult
CacheHierarchy::writeAllocate(Addr addr, const std::uint8_t *src,
                              unsigned bytes)
{
    const Addr line = addr & ~Addr{kCachelineBytes - 1};
    const unsigned offset = static_cast<unsigned>(addr - line);
    std::uint8_t dirty = 0;
    std::uint8_t poison = 0;
    std::uint8_t cached[kCachelineBytes];
    const std::uint8_t valid = collect(line, dirty, cached, &poison);
    std::uint8_t merged[kCachelineBytes] = {};
    const unsigned sector_bytes = l1_.params().sectorBytes;
    for (unsigned s = 0; s < l1_.sectorsPerLine(); ++s) {
        if (valid & (1u << s)) {
            std::memcpy(merged + s * sector_bytes,
                        cached + s * sector_bytes, sector_bytes);
        }
    }
    std::memcpy(merged + offset, src, bytes);
    fillLevel(0, line, l1_.fullMask(), merged, l1_.fullMask(),
              static_cast<std::uint8_t>(poison &
                                        ~fullCoverMask(offset, bytes)));
    return {l1_.params().hitLatency, false};
}

void
CacheHierarchy::flush()
{
    std::vector<Writeback> wbs;
    for (auto *cache : levels_)
        cache->flush(wbs);
    for (const auto &wb : wbs)
        backend_.writeback(wb);
}

} // namespace sam
