#include "src/common/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "src/common/logging.hh"

namespace sam {

Json &
Json::set(const std::string &key, Json value)
{
    sam_assert(kind_ == Kind::Object, "Json::set on a non-object");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    sam_assert(kind_ == Kind::Array, "Json::push on a non-array");
    array_.push_back(std::move(value));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : object_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    sam_assert(kind_ == Kind::Array, "Json::at on a non-array");
    sam_assert(i < array_.size(), "Json::at(", i, ") of ",
               array_.size());
    return array_[i];
}

bool
Json::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

std::int64_t
Json::asI64(std::int64_t fallback) const
{
    switch (kind_) {
      case Kind::Int: return int_;
      case Kind::Uint: return static_cast<std::int64_t>(uint_);
      case Kind::Double: return static_cast<std::int64_t>(double_);
      default: return fallback;
    }
}

std::uint64_t
Json::asU64(std::uint64_t fallback) const
{
    switch (kind_) {
      case Kind::Int:
        return int_ < 0 ? fallback : static_cast<std::uint64_t>(int_);
      case Kind::Uint: return uint_;
      case Kind::Double:
        return double_ < 0 ? fallback
                           : static_cast<std::uint64_t>(double_);
      default: return fallback;
    }
}

double
Json::asDouble(double fallback) const
{
    switch (kind_) {
      case Kind::Int: return static_cast<double>(int_);
      case Kind::Uint: return static_cast<double>(uint_);
      case Kind::Double: return double_;
      default: return fallback;
    }
}

std::string
Json::asString(const std::string &fallback) const
{
    return kind_ == Kind::String ? string_ : fallback;
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim the round-trip precision back when a shorter form is exact.
    char shorter[32];
    for (int prec = 1; prec < 17; ++prec) {
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v) {
            out += shorter;
            return;
        }
    }
    out += buf;
}

void
appendNewlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
               static_cast<std::size_t>(depth), ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        out += std::to_string(int_);
        break;
      case Kind::Uint:
        out += std::to_string(uint_);
        break;
      case Kind::Double:
        appendDouble(out, double_);
        break;
      case Kind::String:
        appendEscaped(out, string_);
        break;
      case Kind::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            appendNewlineIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        appendNewlineIndent(out, indent, depth);
        out += ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ',';
            appendNewlineIndent(out, indent, depth + 1);
            appendEscaped(out, object_[i].first);
            out += indent > 0 ? ": " : ":";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        appendNewlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// ----- parser --------------------------------------------------------

namespace {

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    document(Json &out)
    {
        skipWs();
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after the document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        error_ = "offset " + std::to_string(pos_) + ": " + what;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, Json v, Json &out)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        out = std::move(v);
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected '\"'");
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size())
                return fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode; surrogate pairs are not combined
                // (the writer never emits them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(Json &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            return fail("expected a number");
        // RFC 8259: no leading zeros ("01"), so parse -> dump stays
        // byte-identical (the writer never emits them either).
        const std::size_t first = tok[0] == '-' ? 1 : 0;
        if (tok.size() > first + 1 && tok[first] == '0' &&
            tok[first + 1] >= '0' && tok[first + 1] <= '9')
            return fail("leading zero in number '" + tok + "'");
        errno = 0;
        if (integral) {
            // Preserve the full 64-bit range: unsigned first, signed
            // for negatives; overflow falls back to double.
            char *end = nullptr;
            if (tok[0] != '-') {
                const unsigned long long u =
                    std::strtoull(tok.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0') {
                    out = Json(static_cast<std::uint64_t>(u));
                    return true;
                }
            } else {
                const long long i = std::strtoll(tok.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0') {
                    out = Json(static_cast<std::int64_t>(i));
                    return true;
                }
            }
            errno = 0;
        }
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number '" + tok + "'");
        out = Json(d);
        return true;
    }

    bool
    value(Json &out, int depth)
    {
        if (depth > 96)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n': return literal("null", Json(), out);
          case 't': return literal("true", Json(true), out);
          case 'f': return literal("false", Json(false), out);
          case '"': {
            std::string s;
            if (!string(s))
                return false;
            out = Json(std::move(s));
            return true;
          }
          case '[': {
            ++pos_;
            out = Json::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                Json elem;
                skipWs();
                if (!value(elem, depth + 1))
                    return false;
                out.push(std::move(elem));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '{': {
            ++pos_;
            out = Json::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                skipWs();
                Json member;
                if (!value(member, depth + 1))
                    return false;
                out.set(key, std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          default: return number(out);
        }
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string &error)
{
    out = Json();
    error.clear();
    Parser parser(text, error);
    Json parsed;
    if (!parser.document(parsed))
        return false;
    out = std::move(parsed);
    return true;
}

void
writeJsonFile(const std::string &path, const Json &doc)
{
    // Write-to-temp + fsync + rename: the destination path either
    // keeps its previous complete contents or atomically becomes the
    // new document; no reader can observe a truncated file, even if
    // the host dies between the write and the rename.
    const std::string tmp = path + ".tmp";
    const std::string text = doc.dump();
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        sam_assert(out.good(), "cannot open ", tmp, " for writing");
        out << text;
        out.flush();
        sam_assert(out.good(), "write to ", tmp, " failed");
    }
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd); // Best effort; rename still orders the contents.
        ::close(fd);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        panic("rename ", tmp, " -> ", path, " failed: ",
              std::strerror(err));
    }
}

} // namespace sam
