#include "src/common/json.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/common/logging.hh"

namespace sam {

Json &
Json::set(const std::string &key, Json value)
{
    sam_assert(kind_ == Kind::Object, "Json::set on a non-object");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    sam_assert(kind_ == Kind::Array, "Json::push on a non-array");
    array_.push_back(std::move(value));
    return *this;
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim the round-trip precision back when a shorter form is exact.
    char shorter[32];
    for (int prec = 1; prec < 17; ++prec) {
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v) {
            out += shorter;
            return;
        }
    }
    out += buf;
}

void
appendNewlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
               static_cast<std::size_t>(depth), ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        out += std::to_string(int_);
        break;
      case Kind::Uint:
        out += std::to_string(uint_);
        break;
      case Kind::Double:
        appendDouble(out, double_);
        break;
      case Kind::String:
        appendEscaped(out, string_);
        break;
      case Kind::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            appendNewlineIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        appendNewlineIndent(out, indent, depth);
        out += ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ',';
            appendNewlineIndent(out, indent, depth + 1);
            appendEscaped(out, object_[i].first);
            out += indent > 0 ? ": " : ":";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        appendNewlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

void
writeJsonFile(const std::string &path, const Json &doc)
{
    std::ofstream out(path, std::ios::trunc);
    sam_assert(out.good(), "cannot open ", path, " for writing");
    out << doc.dump();
    out.flush();
    sam_assert(out.good(), "write to ", path, " failed");
}

} // namespace sam
