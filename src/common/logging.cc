#include "src/common/logging.hh"

#include <cstdio>
#include <exception>
#include <stdexcept>

namespace sam {

namespace detail {

bool quiet = false;

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throw rather than abort() so unit tests can observe panics with
    // EXPECT_THROW; uncaught, it still terminates the process.
    throw std::logic_error("panic: " + msg);
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

void
setQuietLogging(bool quiet)
{
    detail::quiet = quiet;
}

} // namespace sam
