/**
 * @file
 * Work-stealing thread pool for campaign execution.
 *
 * Each worker owns a deque of tasks. A batch is distributed round-robin
 * across the deques; workers pop from the front of their own deque and,
 * when empty, steal from the back of a victim's (scanned round-robin
 * from their own index, so no RNG and no contention hot spot). Tasks
 * must be independent: the pool provides no ordering guarantees beyond
 * "every task runs exactly once before run() returns".
 *
 * The pool is intentionally mutex-based rather than lock-free: campaign
 * tasks are whole simulations (milliseconds to minutes), so queue
 * overhead is irrelevant, and the simple locking is trivially clean
 * under TSan. All lock/data relationships are capability-annotated so
 * clang's -Wthread-safety proves the discipline at compile time.
 */

#ifndef SAM_COMMON_THREAD_POOL_HH
#define SAM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.hh"

namespace sam {

class ThreadPool
{
  public:
    /** @param workers Worker threads; 0 picks the host's core count. */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all workers; outstanding batches must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Run every task to completion and return. If tasks throw, the
     * first exception (in completion order) is rethrown after the
     * batch drains; the remaining tasks still run. Not reentrant:
     * tasks must not call run() on the same pool.
     */
    void run(std::vector<std::function<void()>> tasks);

    /** The host's hardware concurrency (at least 1). */
    static unsigned defaultWorkers();

  private:
    struct WorkerQueue
    {
        Mutex mutex;
        std::deque<std::function<void()>> tasks SAM_GUARDED_BY(mutex);
    };

    void workerLoop(unsigned self);

    /** Pop from own front, else steal from a victim's back. */
    bool grabTask(unsigned self, std::function<void()> &task);

    /** Immutable after construction (sized in the constructor). */
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    Mutex mutex_;
    /** condition_variable_any: waitable on the annotated MutexLock. */
    std::condition_variable_any workCv_; ///< Wakes workers for a batch.
    std::condition_variable_any doneCv_; ///< Wakes run() at batch end.
    std::size_t unfinished_ SAM_GUARDED_BY(mutex_) = 0;
    std::uint64_t batch_ SAM_GUARDED_BY(mutex_) = 0;
    bool stop_ SAM_GUARDED_BY(mutex_) = false;
    std::exception_ptr firstError_ SAM_GUARDED_BY(mutex_);
};

} // namespace sam

#endif // SAM_COMMON_THREAD_POOL_HH
