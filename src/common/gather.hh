/**
 * @file
 * A planned stride gather: the G source line addresses and the chunk
 * slot to take from each. Shared by the IMDB layout planner, the cache
 * hierarchy, and the design request expander.
 */

#ifndef SAM_COMMON_GATHER_HH
#define SAM_COMMON_GATHER_HH

#include <vector>

#include "src/common/types.hh"

namespace sam {

struct GatherPlan
{
    std::vector<Addr> lines;
    unsigned sector = 0;
};

} // namespace sam

#endif // SAM_COMMON_GATHER_HH
