/**
 * @file
 * Fundamental scalar types and enums shared across the SAM simulator.
 */

#ifndef SAM_COMMON_TYPES_HH
#define SAM_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace sam {

/** A simulation time expressed in memory-bus clock cycles. */
using Cycle = std::uint64_t;

/** A physical byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** An invalid/unset cycle sentinel. */
inline constexpr Cycle kInvalidCycle = ~Cycle{0};

/** An invalid/unset address sentinel. */
inline constexpr Addr kInvalidAddr = ~Addr{0};

/** Size of one cacheline / one full memory burst of data (bytes). */
inline constexpr unsigned kCachelineBytes = 64;

/** Number of beats in one DDR burst (BL8). */
inline constexpr unsigned kBurstLength = 8;

/**
 * The memory designs evaluated in the paper (Section 6, Figure 12).
 *
 * Baseline is a commodity chipkill DRAM with a row-store database layout.
 * Ideal picks whichever of row-store / column-store the query prefers on
 * the same commodity DRAM.
 */
enum class DesignKind {
    Baseline,     ///< Commodity DRAM, row-store layout.
    RcNvmBit,     ///< RC-NVM with bit-level crossbar symmetry (RRAM).
    RcNvmWord,    ///< RC-NVM with reshaped 2D subarray (RRAM).
    GsDram,       ///< Gather-Scatter DRAM, no ECC.
    GsDramEcc,    ///< GS-DRAM enhanced with embedded ECC.
    SamSub,       ///< SAM with column-wise subarrays.
    SamIo,        ///< SAM exploiting common-die I/O buffers.
    SamEn,        ///< SAM-IO + fine-grained activation + 2D I/O buffer.
    Ideal,        ///< Row- or column-store, whichever the query prefers.
};

/** Human-readable design name, matching the paper's figures. */
std::string designName(DesignKind kind);

/** Memory technology of the storage array. */
enum class MemTech {
    DRAM,   ///< DDR4-2400 timing/power.
    RRAM,   ///< Crossbar resistive RAM timing/power (RC-NVM substrate).
};

std::string memTechName(MemTech tech);

/**
 * Chipkill ECC flavour configured on the rank (Section 2.3).
 *
 * The strided granularity of SAM follows the ECC symbol size: SSC uses
 * 8-bit symbols (16B strided unit), SSC-DSD uses 4-bit symbols (8B strided
 * unit). SSC32 models the 16-bit-granularity point of Figure 14(b).
 */
enum class EccScheme {
    None,       ///< No ECC (plain GS-DRAM operating point).
    SecDed,     ///< (72,64) Hamming, desktop-class.
    Ssc,        ///< Single-symbol-correct chipkill, 8-bit symbols.
    SscDsd,     ///< SSC + double-symbol-detect, 4-bit symbols.
    Ssc32,      ///< Coarse 16-bit-symbol variant (Figure 14(b) leftmost).
    Bamboo72,   ///< Large-codeword variant the paper cites ([26]): one
                ///< RS(72,64) codeword over the whole 512b line, 8-bit
                ///< symbols, 4 per chip -- corrects a whole chip with
                ///< margin, at higher decode complexity.
};

std::string eccSchemeName(EccScheme scheme);

/**
 * Strided granularity in bits contributed per data chip per codeword
 * (Section 4.4). Determines the strided unit: unit = granularity * 2
 * bytes for a 16-data-chip rank.
 */
unsigned strideGranularityBits(EccScheme scheme);

/** Bytes of one strided chunk (the per-codeword data payload). */
unsigned strideUnitBytes(EccScheme scheme);

/**
 * Gather factor G: how many strided chunks one 64B stride-mode transfer
 * returns (G = 64 / strideUnitBytes).
 */
unsigned gatherFactor(EccScheme scheme);

} // namespace sam

#endif // SAM_COMMON_TYPES_HH
