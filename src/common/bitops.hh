/**
 * @file
 * Bit-manipulation helpers used by address mapping and the ECC codecs.
 */

#ifndef SAM_COMMON_BITOPS_HH
#define SAM_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace sam {

/** Extract `len` bits of `value` starting at bit `first` (LSB = 0). */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned first, unsigned len)
{
    if (len == 0)
        return 0;
    if (len >= 64)
        return value >> first;
    return (value >> first) & ((std::uint64_t{1} << len) - 1);
}

/** Replace `len` bits of `value` starting at bit `first` with `field`. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned first, unsigned len,
           std::uint64_t field)
{
    const std::uint64_t mask =
        (len >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << len) - 1))
        << first;
    return (value & ~mask) | ((field << first) & mask);
}

/** log2 of a power-of-two value. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return value == 0 ? 0
                      : 63 - static_cast<unsigned>(std::countl_zero(value));
}

/** True iff `value` is a non-zero power of two. */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Round `value` up to the next multiple of power-of-two `align`. */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round `value` down to a multiple of power-of-two `align`. */
constexpr std::uint64_t
roundDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace sam

#endif // SAM_COMMON_BITOPS_HH
