#include "src/common/thread_pool.hh"

#include <algorithm>

#include "src/common/logging.hh"

namespace sam {

unsigned
ThreadPool::defaultWorkers()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    queues_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

bool
ThreadPool::grabTask(unsigned self, std::function<void()> &task)
{
    {
        WorkerQueue &own = *queues_[self];
        MutexLock lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.front());
            own.tasks.pop_front();
            return true;
        }
    }
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        WorkerQueue &victim = *queues_[(self + i) % queues_.size()];
        MutexLock lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            // Explicit wait loop (not the predicate overload): the
            // guarded reads stay in a scope the thread-safety analysis
            // can see holds mutex_.
            MutexLock lock(mutex_);
            while (!stop_ && batch_ == seen)
                workCv_.wait(lock);
            if (stop_)
                return;
            seen = batch_;
        }
        std::function<void()> task;
        while (grabTask(self, task)) {
            try {
                task();
            } catch (...) {
                MutexLock lock(mutex_);
                if (!firstError_)
                    firstError_ = std::current_exception();
            }
            task = nullptr;
            {
                MutexLock lock(mutex_);
                if (--unfinished_ == 0)
                    doneCv_.notify_all();
            }
        }
    }
}

void
ThreadPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    {
        MutexLock lock(mutex_);
        sam_assert(unfinished_ == 0, "ThreadPool::run is not reentrant");
        unfinished_ = tasks.size();
        firstError_ = nullptr;
    }
    // Distribute before announcing the batch: a worker still draining a
    // previous steal must find the count already provisioned.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        WorkerQueue &q = *queues_[i % queues_.size()];
        MutexLock lock(q.mutex);
        q.tasks.push_back(std::move(tasks[i]));
    }
    MutexLock lock(mutex_);
    ++batch_;
    workCv_.notify_all();
    while (unfinished_ != 0)
        doneCv_.wait(lock);
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

} // namespace sam
