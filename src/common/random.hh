/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * simulations (xoshiro256**).
 */

#ifndef SAM_COMMON_RANDOM_HH
#define SAM_COMMON_RANDOM_HH

#include <cstdint>

namespace sam {

/**
 * A small, fast, deterministic RNG. Every simulator component that needs
 * randomness owns its own Rng seeded from the run configuration so that
 * runs are bit-reproducible regardless of module ordering.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding to fill the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling (no rejection
        // loop needed at simulator fidelity).
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sam

#endif // SAM_COMMON_RANDOM_HH
