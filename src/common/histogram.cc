#include "src/common/histogram.hh"

#include <algorithm>

namespace sam {

namespace {

/** Index of the highest set bit (value must be non-zero). */
unsigned highBit(std::uint64_t value)
{
    unsigned bit = 0;
    while (value >>= 1)
        ++bit;
    return bit;
}

} // namespace

std::size_t
Histogram::bucketIndex(std::uint64_t value)
{
    // Values below 2^kSubBits map one-to-one onto the first group.
    if (value < kSubBuckets)
        return value;
    const unsigned group = highBit(value); // >= kSubBits
    const unsigned shift = group - kSubBits;
    const std::uint64_t sub = (value >> shift) & (kSubBuckets - 1);
    return kSubBuckets + static_cast<std::size_t>(group - kSubBits) *
                             kSubBuckets +
           sub;
}

std::uint64_t
Histogram::bucketLow(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    const std::size_t rest = index - kSubBuckets;
    const unsigned group = kSubBits + static_cast<unsigned>(rest / kSubBuckets);
    const std::uint64_t sub = rest % kSubBuckets;
    const unsigned shift = group - kSubBits;
    return (std::uint64_t{1} << group) + (sub << shift);
}

std::uint64_t
Histogram::bucketWidth(std::size_t index)
{
    if (index < kSubBuckets)
        return 1;
    const std::size_t rest = index - kSubBuckets;
    const unsigned group = kSubBits + static_cast<unsigned>(rest / kSubBuckets);
    return std::uint64_t{1} << (group - kSubBits);
}

void
Histogram::record(std::uint64_t value)
{
    ++buckets_[bucketIndex(value)];
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value);
}

void
Histogram::merge(const Histogram &other)
{
    if (!other.count_)
        return;
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

double
Histogram::quantile(double q) const
{
    if (!count_)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the sample we are after, 1-based.
    const double rank = q * static_cast<double>(count_ - 1) + 1.0;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        const std::uint64_t n = buckets_[i];
        if (!n)
            continue;
        if (static_cast<double>(seen + n) >= rank) {
            // Interpolate linearly within the bucket's value span.
            const double into = (rank - static_cast<double>(seen)) /
                                static_cast<double>(n);
            const double value = static_cast<double>(bucketLow(i)) +
                                 into * static_cast<double>(bucketWidth(i));
            return std::clamp(value, static_cast<double>(min_),
                              static_cast<double>(max_));
        }
        seen += n;
    }
    return static_cast<double>(max_);
}

HistogramSummary
Histogram::summary() const
{
    HistogramSummary s;
    s.count = count_;
    s.min = min();
    s.max = max();
    s.mean = mean();
    s.p50 = quantile(0.50);
    s.p95 = quantile(0.95);
    s.p99 = quantile(0.99);
    return s;
}

} // namespace sam
