/**
 * @file
 * Windowed time series with a bounded ring of windows.
 *
 * Samples are accumulated into fixed-width cycle windows (sum, count,
 * peak). Only the most recent `maxWindows` windows are retained; the
 * series counts samples that arrive for already-evicted windows instead
 * of growing without bound, so long runs keep a fixed footprint.
 */

#ifndef SAM_COMMON_TIMESERIES_HH
#define SAM_COMMON_TIMESERIES_HH

#include <algorithm>
#include <cstdint>
#include <deque>

#include "src/common/logging.hh"
#include "src/common/types.hh"

namespace sam {

/** One aggregation window of a WindowSeries. */
struct SeriesWindow
{
    /** Window index: covers cycles [index*width, (index+1)*width). */
    std::uint64_t index = 0;
    double sum = 0.0;
    std::uint64_t count = 0;
    double peak = 0.0;

    double mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }
};

class WindowSeries
{
  public:
    WindowSeries(Cycle window_cycles, std::size_t max_windows)
        : windowCycles_(window_cycles), maxWindows_(max_windows)
    {
        sam_assert(window_cycles > 0, "window width must be non-zero");
        sam_assert(max_windows > 0, "window capacity must be non-zero");
    }

    /** Accumulate `value` into the window containing cycle `at`. */
    void add(Cycle at, double value)
    {
        const std::uint64_t idx = at / windowCycles_;
        if (!windows_.empty() && idx < windows_.front().index) {
            ++droppedOld_;
            return;
        }
        SeriesWindow &w = windowAt(idx);
        w.sum += value;
        ++w.count;
        w.peak = std::max(w.peak, value);
    }

    Cycle windowCycles() const { return windowCycles_; }
    std::size_t size() const { return windows_.size(); }
    const SeriesWindow &window(std::size_t i) const { return windows_[i]; }
    const std::deque<SeriesWindow> &windows() const { return windows_; }

    /** Samples discarded because their window was already evicted. */
    std::uint64_t droppedOld() const { return droppedOld_; }

    /** Windows evicted from the front to honour the capacity bound. */
    std::uint64_t evicted() const { return evicted_; }

    double totalSum() const
    {
        double s = 0.0;
        for (const SeriesWindow &w : windows_)
            s += w.sum;
        return s;
    }

  private:
    SeriesWindow &windowAt(std::uint64_t idx)
    {
        // Windows are appended in order; samples mostly arrive nearly
        // sorted in time, so scanning back a few entries finds the slot.
        if (windows_.empty() || idx > windows_.back().index) {
            // Zero-fill any skipped span so a clock that jumps over a
            // stall window leaves the same window sequence a ticking
            // clock would: explicit idle windows, not holes. The fill
            // is capacity-bounded -- a jump wider than maxWindows
            // materializes only the trailing maxWindows windows and
            // counts the rest straight into evicted_.
            std::uint64_t next =
                windows_.empty() ? idx : windows_.back().index + 1;
            if (idx - next + 1 > maxWindows_) {
                evicted_ += idx - next + 1 - maxWindows_;
                next = idx + 1 - maxWindows_;
            }
            for (; next <= idx; ++next) {
                windows_.push_back(SeriesWindow{next, 0.0, 0, 0.0});
                while (windows_.size() > maxWindows_) {
                    windows_.pop_front();
                    ++evicted_;
                }
            }
            return windows_.back();
        }
        for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
            if (it->index == idx)
                return *it;
            if (it->index < idx)
                return *windows_.insert(it.base(),
                                        SeriesWindow{idx, 0.0, 0, 0.0});
        }
        return *windows_.insert(windows_.begin(),
                                SeriesWindow{idx, 0.0, 0, 0.0});
    }

    Cycle windowCycles_;
    std::size_t maxWindows_;
    std::deque<SeriesWindow> windows_;
    std::uint64_t droppedOld_ = 0;
    std::uint64_t evicted_ = 0;
};

} // namespace sam

#endif // SAM_COMMON_TIMESERIES_HH
