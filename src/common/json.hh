/**
 * @file
 * Minimal JSON value type, serializer, and parser.
 *
 * The campaign runner emits machine-readable benchmark results
 * (BENCH_*.json) that tools/bench_diff.py consumes; this is the small
 * dependency-free writer behind that. Objects preserve insertion order
 * so emitted files diff cleanly across runs. The parser exists for the
 * crash-safe execution layer: the campaign journal (sam-journal-v1
 * JSONL) and the supervised-worker result pipe are both JSON that the
 * C++ side must read back. A value that round-trips through
 * parse() + dump() re-serializes byte-identically (doubles use
 * shortest-exact formatting on both sides), which is what makes
 * resumed campaign output bit-identical to an uninterrupted run.
 */

#ifndef SAM_COMMON_JSON_HH
#define SAM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sam {

class Json
{
  public:
    enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

    Json() = default;
    Json(bool v) : kind_(Kind::Bool), bool_(v) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Json(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Json(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(const char *v) : kind_(Kind::String), string_(v) {}
    Json(std::string v) : kind_(Kind::String), string_(std::move(v)) {}

    static Json object() { return Json(Kind::Object); }
    static Json array() { return Json(Kind::Array); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool
    isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }

    /** Object member insert/overwrite; keeps first-insertion order. */
    Json &set(const std::string &key, Json value);

    /** Array append. */
    Json &push(Json value);

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Array / object element count; 0 for scalars. */
    std::size_t size() const;

    /** Array element (panics when out of range or not an array). */
    const Json &at(std::size_t i) const;

    /** Object members in insertion order (empty for non-objects). */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return object_;
    }

    // Scalar accessors: return the fallback on kind mismatch; numeric
    // kinds coerce among each other so a reader never cares whether
    // "3" was parsed as Int, Uint, or Double.
    bool asBool(bool fallback = false) const;
    std::int64_t asI64(std::int64_t fallback = 0) const;
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    double asDouble(double fallback = 0.0) const;
    std::string asString(const std::string &fallback = {}) const;

    /** Serialize; `indent` spaces per level, 0 for compact. */
    std::string dump(int indent = 2) const;

    /**
     * Parse one JSON document. Returns false (leaving `out` null) and
     * fills `error` with a position-tagged diagnostic on malformed
     * input, including trailing garbage after the document.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string &error);

  private:
    explicit Json(Kind kind) : kind_(kind) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

/**
 * Write a JSON document to `path` atomically (panics on I/O failure):
 * the serialized text goes to `path + ".tmp"`, is flushed and fsynced,
 * and is renamed over `path` only then. An interrupted run can
 * therefore never leave a truncated BENCH/telemetry/trace file for
 * downstream consumers (bench_diff.py and friends) to trip over —
 * readers see either the old complete document or the new one.
 */
void writeJsonFile(const std::string &path, const Json &doc);

} // namespace sam

#endif // SAM_COMMON_JSON_HH
