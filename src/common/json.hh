/**
 * @file
 * Minimal JSON value type and serializer.
 *
 * The campaign runner emits machine-readable benchmark results
 * (BENCH_*.json) that tools/bench_diff.py consumes; this is the small
 * dependency-free writer behind that. Objects preserve insertion order
 * so emitted files diff cleanly across runs. Serialization only — the
 * repo never needs to parse JSON in C++.
 */

#ifndef SAM_COMMON_JSON_HH
#define SAM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sam {

class Json
{
  public:
    enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

    Json() = default;
    Json(bool v) : kind_(Kind::Bool), bool_(v) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Json(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Json(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(const char *v) : kind_(Kind::String), string_(v) {}
    Json(std::string v) : kind_(Kind::String), string_(std::move(v)) {}

    static Json object() { return Json(Kind::Object); }
    static Json array() { return Json(Kind::Array); }

    Kind kind() const { return kind_; }

    /** Object member insert/overwrite; keeps first-insertion order. */
    Json &set(const std::string &key, Json value);

    /** Array append. */
    Json &push(Json value);

    /** Serialize; `indent` spaces per level, 0 for compact. */
    std::string dump(int indent = 2) const;

  private:
    explicit Json(Kind kind) : kind_(kind) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

/** Write a JSON document to `path` (panics on I/O failure). */
void writeJsonFile(const std::string &path, const Json &doc);

} // namespace sam

#endif // SAM_COMMON_JSON_HH
