#include "src/common/stats.hh"

#include <iomanip>

namespace sam {

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &entry : counters_) {
        os << name_ << '.' << std::left << std::setw(28) << entry.name
           << ' ' << std::right << std::setw(14) << entry.stat->value();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
    }
    for (const auto &entry : accums_) {
        os << name_ << '.' << std::left << std::setw(28) << entry.name
           << ' ' << std::right << std::setw(14) << std::fixed
           << std::setprecision(2) << entry.stat->value();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
    }
}

std::uint64_t
StatGroup::counterValue(const std::string &stat_name) const
{
    for (const auto &entry : counters_) {
        if (entry.name == stat_name)
            return entry.stat->value();
    }
    return 0;
}

double
StatGroup::accumValue(const std::string &stat_name) const
{
    for (const auto &entry : accums_) {
        if (entry.name == stat_name)
            return entry.stat->value();
    }
    return 0.0;
}

} // namespace sam
