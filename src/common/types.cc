#include "src/common/types.hh"

#include "src/common/logging.hh"

namespace sam {

std::string
designName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Baseline:  return "baseline";
      case DesignKind::RcNvmBit:  return "RC-NVM-bit";
      case DesignKind::RcNvmWord: return "RC-NVM-wd";
      case DesignKind::GsDram:    return "GS-DRAM";
      case DesignKind::GsDramEcc: return "GS-DRAM-ecc";
      case DesignKind::SamSub:    return "SAM-sub";
      case DesignKind::SamIo:     return "SAM-IO";
      case DesignKind::SamEn:     return "SAM-en";
      case DesignKind::Ideal:     return "ideal";
    }
    panic("unknown DesignKind");
}

std::string
memTechName(MemTech tech)
{
    switch (tech) {
      case MemTech::DRAM: return "DRAM";
      case MemTech::RRAM: return "RRAM";
    }
    panic("unknown MemTech");
}

std::string
eccSchemeName(EccScheme scheme)
{
    switch (scheme) {
      case EccScheme::None:   return "none";
      case EccScheme::SecDed: return "SEC-DED";
      case EccScheme::Ssc:    return "SSC";
      case EccScheme::SscDsd: return "SSC-DSD";
      case EccScheme::Ssc32:  return "SSC-32";
      case EccScheme::Bamboo72: return "Bamboo-72";
    }
    panic("unknown EccScheme");
}

unsigned
strideGranularityBits(EccScheme scheme)
{
    switch (scheme) {
      case EccScheme::None:
      case EccScheme::SecDed:
      case EccScheme::Ssc:
      case EccScheme::Bamboo72: return 8;
      case EccScheme::SscDsd:   return 4;
      case EccScheme::Ssc32:    return 16;
    }
    panic("unknown EccScheme");
}

unsigned
strideUnitBytes(EccScheme scheme)
{
    // 16 data chips, each contributing `granularity` bits per codeword.
    return strideGranularityBits(scheme) * 16 / 8;
}

unsigned
gatherFactor(EccScheme scheme)
{
    return kCachelineBytes / strideUnitBytes(scheme);
}

} // namespace sam
