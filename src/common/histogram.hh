/**
 * @file
 * Log-linear latency histogram (HDR-style).
 *
 * Values are bucketed into power-of-two groups split into 16 linear
 * sub-buckets each, bounding the relative quantile error to ~6% while
 * keeping the footprint a fixed 8KB array and record() branch-free
 * enough for per-request use. Exact count/min/max/sum are tracked on
 * the side so summary statistics do not inherit bucketing error.
 */

#ifndef SAM_COMMON_HISTOGRAM_HH
#define SAM_COMMON_HISTOGRAM_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace sam {

/** Point summary of a histogram (quantiles from bucket interpolation). */
struct HistogramSummary
{
    std::uint64_t count = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

class Histogram
{
  public:
    /** Sub-buckets per power-of-two group (16 => <=1/16 rel. error). */
    static constexpr unsigned kSubBits = 4;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;
    /** Enough groups to cover the full 64-bit value range. */
    static constexpr std::size_t kBuckets =
        kSubBuckets + (64 - kSubBits) * kSubBuckets;

    void record(std::uint64_t value);

    /** Merge another histogram's samples into this one. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Value at quantile `q` in [0, 1], linearly interpolated within the
     * containing bucket and clamped to the exact observed [min, max].
     */
    double quantile(double q) const;

    HistogramSummary summary() const;

    /** Bucket index a value lands in (exposed for tests). */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Inclusive lower bound of a bucket. */
    static std::uint64_t bucketLow(std::size_t index);

    /** Width of a bucket in value units. */
    static std::uint64_t bucketWidth(std::size_t index);

    std::uint64_t bucketCount(std::size_t index) const
    {
        return buckets_[index];
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

} // namespace sam

#endif // SAM_COMMON_HISTOGRAM_HH
