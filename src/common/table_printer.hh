/**
 * @file
 * Column-aligned ASCII table output for the benchmark harness. Each bench
 * binary prints the same rows/series as the corresponding paper figure.
 */

#ifndef SAM_COMMON_TABLE_PRINTER_HH
#define SAM_COMMON_TABLE_PRINTER_HH

#include <ostream>
#include <string>
#include <vector>

namespace sam {

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 * Numeric formatting is the caller's responsibility (use fmtNum helpers).
 */
class TablePrinter
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Insert a horizontal separator line after the current last row. */
    void separator();

    /** Render the table. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

/** Format a double with `prec` digits after the decimal point. */
std::string fmtNum(double value, int prec = 2);

/** Format a value as a percentage string, e.g.\ "7.2%". */
std::string fmtPercent(double fraction, int prec = 1);

} // namespace sam

#endif // SAM_COMMON_TABLE_PRINTER_HH
