/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() flags simulator bugs (aborts); fatal() flags user/configuration
 * errors (clean exit); warn()/inform() report conditions without stopping
 * the simulation.
 */

#ifndef SAM_COMMON_LOGGING_HH
#define SAM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sam {

namespace detail {

/** Stream-concatenate a variadic argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** When true, warn()/inform() output is suppressed (quiet benches). */
extern bool quiet;

} // namespace detail

/** Suppress or re-enable warn()/inform() console output. */
void setQuietLogging(bool quiet);

/**
 * Abort on an internal invariant violation — a simulator bug, never a
 * consequence of user input.
 */
#define panic(...)                                                          \
    ::sam::detail::panicImpl(__FILE__, __LINE__,                            \
                             ::sam::detail::concat(__VA_ARGS__))

/**
 * Exit on an unrecoverable condition caused by user input (bad
 * configuration, invalid arguments).
 */
#define fatal(...)                                                          \
    ::sam::detail::fatalImpl(__FILE__, __LINE__,                            \
                             ::sam::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define warn(...)                                                           \
    ::sam::detail::warnImpl(::sam::detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define inform(...)                                                         \
    ::sam::detail::informImpl(::sam::detail::concat(__VA_ARGS__))

/** Assert a simulator invariant with a formatted message. */
#define sam_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sam::detail::panicImpl(                                       \
                __FILE__, __LINE__,                                         \
                ::sam::detail::concat("assertion '", #cond, "' failed: ",   \
                                      __VA_ARGS__));                        \
        }                                                                   \
    } while (0)

} // namespace sam

#endif // SAM_COMMON_LOGGING_HH
