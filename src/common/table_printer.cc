#include "src/common/table_printer.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace sam {

void
TablePrinter::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::separator()
{
    separators_.push_back(rows_.size());
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &cells : rows_)
        grow(cells);

    auto print_rule = [&]() {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            os << std::string(widths[i] + 2, '-');
            os << (i + 1 < widths.size() ? "+" : "");
        }
        os << '\n';
    };
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            // Left-align the first column (labels), right-align numbers.
            if (i == 0) {
                os << ' ' << std::left << std::setw(widths[i]) << cell
                   << ' ';
            } else {
                os << ' ' << std::right << std::setw(widths[i]) << cell
                   << ' ';
            }
            os << (i + 1 < widths.size() ? "|" : "");
        }
        os << '\n';
    };

    if (!header_.empty()) {
        print_row(header_);
        print_rule();
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (std::find(separators_.begin(), separators_.end(), i) !=
            separators_.end()) {
            print_rule();
        }
        print_row(rows_[i]);
    }
}

std::string
fmtNum(double value, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, value);
    return buf;
}

std::string
fmtPercent(double fraction, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
    return buf;
}

} // namespace sam
