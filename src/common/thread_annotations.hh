/**
 * @file
 * Clang thread-safety capability annotations and annotated lock types.
 *
 * The macros expand to clang's `-Wthread-safety` attributes when the
 * analysis is available and to nothing otherwise (gcc), so annotated
 * code compiles everywhere while clang builds statically prove the
 * lock discipline: every access to a `SAM_GUARDED_BY(m)` member must
 * happen with `m` held, and every `SAM_REQUIRES(m)` function must be
 * called with `m` held. The CI clang build enables `-Wthread-safety`
 * (with SAM_WERROR it is enforced as an error), and the samlint
 * `sam-locking` check rejects raw `std::mutex` members outside this
 * header so new concurrent state cannot bypass the analysis.
 *
 * `Mutex`/`MutexLock` wrap `std::mutex` with capability annotations
 * (libstdc++'s own lock types carry none). `MutexLock` is also a
 * BasicLockable, so `std::condition_variable_any` can wait on it.
 */

#ifndef SAM_COMMON_THREAD_ANNOTATIONS_HH
#define SAM_COMMON_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define SAM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SAM_THREAD_ANNOTATION(x)
#endif

#define SAM_CAPABILITY(x) SAM_THREAD_ANNOTATION(capability(x))
#define SAM_SCOPED_CAPABILITY SAM_THREAD_ANNOTATION(scoped_lockable)
#define SAM_GUARDED_BY(x) SAM_THREAD_ANNOTATION(guarded_by(x))
#define SAM_PT_GUARDED_BY(x) SAM_THREAD_ANNOTATION(pt_guarded_by(x))
#define SAM_ACQUIRE(...) \
    SAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SAM_RELEASE(...) \
    SAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SAM_TRY_ACQUIRE(...) \
    SAM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SAM_REQUIRES(...) \
    SAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SAM_EXCLUDES(...) SAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SAM_NO_THREAD_SAFETY_ANALYSIS \
    SAM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sam {

/** A std::mutex carrying a thread-safety capability. */
class SAM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SAM_ACQUIRE() { m_.lock(); }
    void unlock() SAM_RELEASE() { m_.unlock(); }
    bool try_lock() SAM_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_; // NOLINT(sam-locking): the annotated wrapper itself
};

/**
 * Scoped lock over a Mutex (the annotated std::lock_guard). Exposes
 * lock()/unlock() so std::condition_variable_any can release and
 * reacquire it during a wait; the capability is held whenever control
 * is inside the owning scope, which is exactly what the analysis (and
 * the caller) sees across a wait.
 */
class SAM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) SAM_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() SAM_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** For condition_variable_any::wait only. */
    void lock() SAM_ACQUIRE() { m_.lock(); }
    void unlock() SAM_RELEASE() { m_.unlock(); }

  private:
    Mutex &m_;
};

} // namespace sam

#endif // SAM_COMMON_THREAD_ANNOTATIONS_HH
