/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register Counter/Scalar stats into a StatGroup; the System
 * aggregates groups and dumps them at end of simulation. The design
 * mirrors gem5's stats package at a much smaller scale.
 */

#ifndef SAM_COMMON_STATS_HH
#define SAM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sam {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }
    operator std::uint64_t() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A floating-point accumulator (e.g., energy in pJ). */
class Accum
{
  public:
    Accum() = default;

    Accum &operator+=(double v) { value_ += v; return *this; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }
    operator double() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A named collection of statistics belonging to one component.
 *
 * Stats are registered by reference; the group does not own them. The
 * owning component must outlive the group's last dump.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void
    addCounter(const std::string &stat_name, const Counter &counter,
               const std::string &desc = "")
    {
        counters_.push_back({stat_name, &counter, desc});
    }

    void
    addAccum(const std::string &stat_name, const Accum &accum,
             const std::string &desc = "")
    {
        accums_.push_back({stat_name, &accum, desc});
    }

    const std::string &name() const { return name_; }

    /** Write `group.stat value  # desc` lines to `os`. */
    void dump(std::ostream &os) const;

    /** Look up a counter value by name; returns 0 if absent. */
    std::uint64_t counterValue(const std::string &stat_name) const;

    /** Look up an accumulator value by name; returns 0 if absent. */
    double accumValue(const std::string &stat_name) const;

  private:
    struct CounterEntry
    {
        std::string name;
        const Counter *stat;
        std::string desc;
    };

    struct AccumEntry
    {
        std::string name;
        const Accum *stat;
        std::string desc;
    };

    std::string name_;
    std::vector<CounterEntry> counters_;
    std::vector<AccumEntry> accums_;
};

} // namespace sam

#endif // SAM_COMMON_STATS_HH
