/**
 * @file
 * Memory requests exchanged between the cache hierarchy / query engine
 * and the memory controller.
 */

#ifndef SAM_CONTROLLER_REQUEST_HH
#define SAM_CONTROLLER_REQUEST_HH

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/logging.hh"
#include "src/common/types.hh"
#include "src/dram/data_path.hh"
#include "src/dram/device.hh"

namespace sam {

/**
 * The request types visible above the controller. StrideRead and
 * StrideWrite correspond to the paper's sload / sstore ISA extension
 * (Section 5.1.2); the request type is how the "instruction" informs
 * the controller to drive the stride mode.
 */
enum class AccessType { Read, Write, StrideRead, StrideWrite };

inline bool
isWrite(AccessType t)
{
    return t == AccessType::Write || t == AccessType::StrideWrite;
}

inline bool
isStride(AccessType t)
{
    return t == AccessType::StrideRead || t == AccessType::StrideWrite;
}

/**
 * Upper bound on source lines of one request: the widest stride gather
 * is G = 64B / 8B = 8 lines (SscDsd); 16 leaves headroom for future
 * schemes without another request-size bump.
 */
constexpr unsigned kMaxGatherLines = 16;

/** One line-granular (or stride-line-granular) memory request. */
struct MemRequest
{
    AccessType type = AccessType::Read;

    /**
     * Line address for regular accesses; gather-group base address
     * (aligned to G lines) for stride accesses.
     */
    Addr addr = 0;

    /** Chunk slot within each source line for stride accesses. */
    unsigned sector = 0;

    /** Write payload (64B) for Write / StrideWrite. */
    std::vector<std::uint8_t> writeData;

    /**
     * RAS demand-scrub writeback: timing-only, carries no payload (the
     * DataPath already healed the backing store when it corrected the
     * line); it still occupies the write queue and the bus.
     */
    bool isScrub = false;

    Cycle arrival = 0;
    unsigned coreId = 0;
    std::uint64_t id = 0;

    // ----- Filled by the design model before enqueue --------------
    /** Timing view: the device access this request performs. */
    DeviceAccess device;
    /**
     * Functional view: source lines (1 for regular, G for stride),
     * stored inline so a request never heap-allocates for its line
     * list. Only the first `gatherCount` slots are meaningful.
     */
    std::array<Addr, kMaxGatherLines> gatherLines{};
    std::uint8_t gatherCount = 0;
    /** Stride chunk size in bytes (unused for regular accesses). */
    unsigned strideUnit = 0;

    void setLine(Addr line)
    {
        gatherLines[0] = line;
        gatherCount = 1;
    }

    void setLines(const Addr *lines, std::size_t count)
    {
        sam_assert(count > 0 && count <= kMaxGatherLines,
                   "gather of ", count, " lines exceeds request inline "
                   "capacity");
        for (std::size_t i = 0; i < count; ++i)
            gatherLines[i] = lines[i];
        gatherCount = static_cast<std::uint8_t>(count);
    }
};

/** Completion record returned by the controller. */
struct Completion
{
    std::uint64_t id = 0;
    unsigned coreId = 0;
    Cycle done = 0;
    bool isRead = false;
    ReadOutcome outcome;  ///< Data + ECC flags for reads.
};

} // namespace sam

#endif // SAM_CONTROLLER_REQUEST_HH
