#include "src/controller/request_queue.hh"

#include "src/common/logging.hh"

namespace sam {

RequestQueue::RequestQueue(const Geometry &geom)
    : geom_(geom)
{
    openRow_.assign(geom_.totalBanks(), kNoRow);
    bankEligible_.assign(geom_.totalBanks(), 0);
    inHot_.assign(geom_.totalBanks(), 0);
}

void
RequestQueue::maybeHot(std::size_t flat_bank)
{
    if (openRow_[flat_bank] != kNoRow && bankEligible_[flat_bank] > 0 &&
        !inHot_[flat_bank]) {
        inHot_[flat_bank] = 1;
        hotBanks_.push_back(static_cast<std::uint32_t>(flat_bank));
    }
}

void
RequestQueue::noteRowOpened(std::size_t flat_bank, std::uint64_t row)
{
    openRow_[flat_bank] = row;
    maybeHot(flat_bank);
}

void
RequestQueue::noteRowClosed(std::size_t flat_bank)
{
    // The hot-list entry, if any, is pruned lazily on the next pick.
    openRow_[flat_bank] = kNoRow;
}

void
RequestQueue::push(MemRequest req)
{
    std::uint32_t idx;
    if (!freeSlots_.empty()) {
        idx = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot &s = slots_[idx];
    s.req = std::move(req);
    s.seq = nextSeq_++;
    s.state = SlotState::Pending;
    pending_.push({s.req.arrival, s.seq, idx});
    ++live_;
}

void
RequestQueue::promote(Cycle now)
{
    while (!pending_.empty()) {
        const auto &[arrival, seq, idx] = pending_.top();
        if (arrival > now)
            break;
        Slot &s = slots_[idx];
        if (s.state == SlotState::Pending && s.seq == seq) {
            s.state = SlotState::Eligible;
            s.flatBank = static_cast<std::uint32_t>(
                s.req.device.addr.flatBank(geom_));
            eligible_.push({seq, idx});
            rowBuckets_[bucketKey(s.req.device.addr)].push({seq, idx});
            ++bucketEntries_;
            ++eligibleLive_;
            ++bankEligible_[s.flatBank];
            maybeHot(s.flatBank);
        }
        pending_.pop();
    }
}

MemRequest
RequestQueue::take(std::uint32_t slot_idx)
{
    Slot &s = slots_[slot_idx];
    sam_assert(s.state != SlotState::Free, "taking a free slot");
    if (s.state == SlotState::Eligible) {
        --eligibleLive_;
        --bankEligible_[s.flatBank];
    }
    s.state = SlotState::Free;
    freeSlots_.push_back(slot_idx);
    --live_;
    return std::move(s.req);
}

void
RequestQueue::maybeCompact()
{
    // Lazy deletion leaves one stale entry per pick in the indexes a
    // pick did not use; rebuild once they dominate so memory stays
    // proportional to the live backlog.
    const std::size_t budget = 2 * eligibleLive_ + 64;
    if (eligible_.size() > budget) {
        MinHeap<SeqEntry> fresh;
        for (std::uint32_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].state == SlotState::Eligible)
                fresh.push({slots_[i].seq, i});
        }
        eligible_ = std::move(fresh);
    }
    if (bucketEntries_ > budget) {
        rowBuckets_.clear();
        bucketEntries_ = 0;
        for (std::uint32_t i = 0; i < slots_.size(); ++i) {
            const Slot &s = slots_[i];
            if (s.state == SlotState::Eligible) {
                rowBuckets_[bucketKey(s.req.device.addr)].push(
                    {s.seq, i});
                ++bucketEntries_;
            }
        }
    }
}

Cycle
RequestQueue::earliestActionable(Cycle now)
{
    if (live_ == 0)
        return kInvalidCycle;
    promote(now);
    if (eligibleLive_ > 0)
        return now;
    while (!pending_.empty()) {
        const auto &[arrival, seq, idx] = pending_.top();
        if (slots_[idx].state == SlotState::Pending &&
            slots_[idx].seq == seq)
            return arrival;
        pending_.pop();
    }
    panic("request queue indexes lost a live request");
}

MemRequest
RequestQueue::popBest(Cycle now, bool &row_hit_pick)
{
    sam_assert(live_ > 0, "popBest on an empty queue");
    promote(now);

    // Rule 1: oldest arrived request hitting an open row. Probe only
    // the hot banks (open row AND eligible requests), pruning entries
    // that stopped qualifying since they were added. Probe order does
    // not matter: the pick is the min seq over all candidates.
    std::uint64_t best_seq = ~std::uint64_t{0};
    std::uint32_t best_slot = 0;
    for (std::size_t i = 0; i < hotBanks_.size();) {
        const std::uint32_t fb = hotBanks_[i];
        if (openRow_[fb] == kNoRow || bankEligible_[fb] == 0) {
            inHot_[fb] = 0;
            hotBanks_[i] = hotBanks_.back();
            hotBanks_.pop_back();
            continue;
        }
        const std::uint64_t key =
            (static_cast<std::uint64_t>(fb) << 40) | openRow_[fb];
        auto it = rowBuckets_.find(key);
        if (it != rowBuckets_.end()) {
            MinHeap<SeqEntry> &heap = it->second;
            while (!heap.empty() &&
                   stale(heap.top(), SlotState::Eligible)) {
                heap.pop();
                --bucketEntries_;
            }
            if (heap.empty()) {
                rowBuckets_.erase(it);
            } else if (heap.top().first < best_seq) {
                best_seq = heap.top().first;
                best_slot = heap.top().second;
            }
        }
        ++i;
    }
    if (best_seq != ~std::uint64_t{0}) {
        row_hit_pick = true;
        MemRequest req = take(best_slot);
        maybeCompact();
        return req;
    }
    row_hit_pick = false;

    // Rule 2: oldest arrived request.
    while (!eligible_.empty() &&
           stale(eligible_.top(), SlotState::Eligible)) {
        eligible_.pop();
    }
    if (!eligible_.empty()) {
        MemRequest req = take(eligible_.top().second);
        eligible_.pop();
        maybeCompact();
        return req;
    }

    // Rule 3: nothing has arrived yet; serve the earliest-arriving
    // request (ties broken by insertion order, as the heap key does).
    while (!pending_.empty()) {
        const auto [arrival, seq, idx] = pending_.top();
        (void)arrival;
        if (slots_[idx].state == SlotState::Pending &&
            slots_[idx].seq == seq) {
            pending_.pop();
            return take(idx);
        }
        pending_.pop();
    }
    panic("request queue indexes lost a live request");
}

} // namespace sam
