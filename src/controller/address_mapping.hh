/**
 * @file
 * Physical address decomposition (Table 2: rw:rk:bk:ch:cl:offset) and
 * the stride-mode virtual-to-physical remap of Figure 10.
 */

#ifndef SAM_CONTROLLER_ADDRESS_MAPPING_HH
#define SAM_CONTROLLER_ADDRESS_MAPPING_HH

#include "src/common/gather.hh"
#include "src/common/types.hh"
#include "src/dram/address.hh"
#include "src/dram/timing.hh"

namespace sam {

/**
 * Bit-sliced address mapping. From MSB to LSB: row, rank, bank group,
 * bank, channel, column (line within row), byte offset. Putting column
 * bits lowest maximises row-buffer hits for sequential scans, matching
 * the open-page policy of Table 2.

 */
class AddressMapping
{
  public:
    explicit AddressMapping(const Geometry &geom);

    /** Decompose a flat physical byte address (line-aligned or not). */
    MappedAddr decompose(Addr addr) const;

    /** Inverse of decompose for a line-aligned address. */
    Addr compose(const MappedAddr &mapped) const;

    /** Line-align an address. */
    static Addr lineBase(Addr addr) { return addr & ~Addr{63}; }

    unsigned offsetBits() const { return offsetBits_; }
    unsigned columnBits() const { return columnBits_; }
    unsigned channelBits() const { return channelBits_; }
    unsigned bankBits() const { return bankBits_; }
    unsigned groupBits() const { return groupBits_; }
    unsigned rankBits() const { return rankBits_; }

    /** Width of the combined bank selector (bank+group+rank). */
    unsigned bankSelBits() const
    {
        return bankBits_ + groupBits_ + rankBits_;
    }

    const Geometry &geometry() const { return geom_; }

    /**
     * Figure 10 stride-mode remap: swap the low `swap_bits` of the
     * page-offset column field with the bits that select consecutive
     * lines, so that a contiguous virtual range walks chunk-wise across
     * the gather group. `swap_bits` = log2(G): 3 for 4-bit granularity,
     * 2 for 8-bit.
     *
     * Concretely: vaddr bits [u, u + swap) (line-within-group) exchange
     * with bits [u + swap, u + 2*swap) where u = log2(strideUnit)...
     * The returned address is the physical location the strided datum
     * occupies.
     */
    Addr strideRemap(Addr vaddr, unsigned gather, unsigned unit) const;

    /** Inverse of strideRemap (the swap is an involution). */
    Addr
    strideUnmap(Addr paddr, unsigned gather, unsigned unit) const
    {
        return strideRemap(paddr, gather, unit);
    }

    /**
     * The gather plan an sload at stride-space address `vaddr`
     * (64B-aligned) performs: the Figure 10 remap of each chunk of the
     * virtual line yields one chunk slot of each of G consecutive
     * physical lines. This is the hardware's view; the IMDB layer
     * computes the same plans from its layout knowledge
     * (Table::gatherPlan).
     */
    GatherPlan strideGather(Addr vaddr, unsigned gather,
                            unsigned unit) const;

  private:
    Geometry geom_;
    unsigned offsetBits_;
    unsigned columnBits_;
    unsigned channelBits_;
    unsigned bankBits_;
    unsigned groupBits_;
    unsigned rankBits_;
};

} // namespace sam

#endif // SAM_CONTROLLER_ADDRESS_MAPPING_HH
