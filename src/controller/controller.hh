/**
 * @file
 * FR-FCFS open-page memory controller (paper Table 2: open-page policy,
 * FR-FCFS scheduling, 32-entry write queue with watermark draining).
 */

#ifndef SAM_CONTROLLER_CONTROLLER_HH
#define SAM_CONTROLLER_CONTROLLER_HH

#include <cstdint>
#include <optional>

#include "src/common/stats.hh"
#include "src/controller/address_mapping.hh"
#include "src/controller/request.hh"
#include "src/controller/request_queue.hh"
#include "src/dram/data_path.hh"
#include "src/dram/device.hh"

namespace sam {

class Telemetry;

/** Controller tuning knobs. */
struct ControllerParams
{
    unsigned writeQueueCapacity = 32;  ///< Table 2.
    unsigned writeHighWatermark = 24;  ///< Start draining writes.
    unsigned writeLowWatermark = 8;    ///< Stop draining writes.
    Cycle pipelineLatency = 4;         ///< Controller + ECC decode.
};

/** Controller statistics. */
struct ControllerStats
{
    Counter readsServed;
    Counter writesServed;
    Counter strideReadsServed;
    Counter strideWritesServed;
    Counter frRowHitPicks;   ///< Scheduling picks that were row hits.
    Counter fcfsPicks;       ///< Fallback oldest-first picks.
    Counter scrubWrites;     ///< RAS demand-scrub writebacks issued.
    Accum totalReadLatency;  ///< Sum of (done - arrival) over reads.

    void registerIn(StatGroup &group) const;
};

/**
 * One channel's memory controller. Owns scheduling; the Device owns
 * timing state; the DataPath owns functional data.
 *
 * Event-driven: serviceNext() picks the best eligible request under
 * FR-FCFS, issues it to the device, performs the functional transfer,
 * and returns the completion. The internal clock advances to each
 * serviced request's issue time.
 *
 * The controller registers as the device's RowStateListener and
 * forwards row open/close transitions to both queues, which keep an
 * incremental open-row index for rule-1 picks.
 */
class MemoryController : public RowStateListener
{
  public:
    /**
     * @param functional When false the controller is timing-only: it
     *        schedules commands but performs no data movement (used by
     *        the trace-replay phase, whose functional effects already
     *        happened during trace generation).
     */
    MemoryController(Device &device, DataPath &data_path,
                     const AddressMapping &mapping,
                     ControllerParams params = {},
                     bool functional = true);
    ~MemoryController() override;

    MemoryController(const MemoryController &) = delete;
    MemoryController &operator=(const MemoryController &) = delete;

    void rowOpened(std::size_t flat_bank, std::uint64_t row) override;
    void rowClosed(std::size_t flat_bank) override;

    /** Enqueue a request (arrival time already set by the producer). */
    void push(MemRequest req);

    bool hasPending() const { return !readQ_.empty() || !writeQ_.empty(); }
    std::size_t readQueueDepth() const { return readQ_.size(); }
    std::size_t writeQueueDepth() const { return writeQ_.size(); }

    /**
     * Serve one request. Returns std::nullopt when both queues are
     * empty. The controller clock never runs backwards; requests
     * arriving "in the past" are served as soon as seen.
     */
    std::optional<Completion> serviceNext();

    /** Serve everything currently queued; returns the last done time. */
    Cycle drainAll();

    /**
     * Earliest cycle serviceNext() could issue its next pick: the
     * minimum over both queues' earliest actionable arrival, clamped
     * to the controller clock (which never runs backwards).
     * kInvalidCycle when idle -- the controller's contribution to an
     * EventQueue-driven caller.
     */
    Cycle earliestAction();

    Cycle now() const { return now_; }
    const ControllerStats &stats() const { return stats_; }
    Device &device() { return device_; }

    /**
     * Forward a command observer to the underlying device (the hook the
     * src/check protocol oracle and the telemetry tracer use to watch
     * the command stream).
     */
    void
    addCommandObserver(const void *owner, CommandObserver obs)
    {
        device_.addCommandObserver(owner, std::move(obs));
    }

    /** Detach counterpart of addCommandObserver (no-op if absent). */
    void
    removeCommandObserver(const void *owner)
    {
        device_.removeCommandObserver(owner);
    }

    /**
     * Attach a telemetry collector. The controller reports request
     * begin/end around each device access so end-to-end latency and
     * queue-depth series can be attributed per request. Null detaches.
     */
    void setTelemetry(Telemetry *telemetry) { telemetry_ = telemetry; }

    DataPath &dataPath() { return dataPath_; }

  private:
    /** Issue to device + functional data movement. */
    Completion serve(MemRequest req);

    /** Enqueue timing-only scrub writebacks a read outcome triggered. */
    void pushScrubs(const ReadOutcome &outcome, Cycle when,
                    unsigned core_id);

    Device &device_;
    DataPath &dataPath_;
    const AddressMapping &mapping_;
    ControllerParams params_;

    bool functional_;
    Telemetry *telemetry_ = nullptr;
    RequestQueue readQ_;
    RequestQueue writeQ_;
    bool drainingWrites_ = false;
    Cycle now_ = 0;
    ControllerStats stats_;
};

} // namespace sam

#endif // SAM_CONTROLLER_CONTROLLER_HH
