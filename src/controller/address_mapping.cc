#include "src/controller/address_mapping.hh"

#include "src/common/bitops.hh"
#include "src/common/logging.hh"

namespace sam {

AddressMapping::AddressMapping(const Geometry &geom)
    : geom_(geom)
{
    sam_assert(isPowerOf2(geom.channels) && isPowerOf2(geom.ranks) &&
                   isPowerOf2(geom.bankGroups) &&
                   isPowerOf2(geom.banksPerGroup) &&
                   isPowerOf2(geom.rowBytes),
               "geometry fields must be powers of two");
    offsetBits_ = floorLog2(kCachelineBytes);
    columnBits_ = floorLog2(geom.linesPerRow());
    channelBits_ = floorLog2(geom.channels);
    bankBits_ = floorLog2(geom.banksPerGroup);
    groupBits_ = floorLog2(geom.bankGroups);
    rankBits_ = floorLog2(geom.ranks);
}

MappedAddr
AddressMapping::decompose(Addr addr) const
{
    MappedAddr m;
    unsigned shift = offsetBits_;
    m.column = static_cast<unsigned>(bits(addr, shift, columnBits_));
    shift += columnBits_;
    m.channel = static_cast<unsigned>(bits(addr, shift, channelBits_));
    shift += channelBits_;
    std::uint64_t sel = bits(addr, shift, bankSelBits());
    shift += bankSelBits();
    m.row = bits(addr, shift, 64 - shift);
    m.bank = static_cast<unsigned>(bits(sel, 0, bankBits_));
    m.bankGroup = static_cast<unsigned>(bits(sel, bankBits_,
                                             groupBits_));
    m.rank = static_cast<unsigned>(
        bits(sel, bankBits_ + groupBits_, rankBits_));
    return m;
}

Addr
AddressMapping::compose(const MappedAddr &m) const
{
    std::uint64_t sel = m.bank;
    sel = insertBits(sel, bankBits_, groupBits_, m.bankGroup);
    sel = insertBits(sel, bankBits_ + groupBits_, rankBits_, m.rank);

    Addr addr = 0;
    unsigned shift = offsetBits_;
    addr = insertBits(addr, shift, columnBits_, m.column);
    shift += columnBits_;
    addr = insertBits(addr, shift, channelBits_, m.channel);
    shift += channelBits_;
    addr = insertBits(addr, shift, bankSelBits(), sel);
    shift += bankSelBits();
    addr = insertBits(addr, shift, 64 - shift, m.row);
    return addr;
}

Addr
AddressMapping::strideRemap(Addr vaddr, unsigned gather,
                            unsigned unit) const
{
    sam_assert(isPowerOf2(gather) && isPowerOf2(unit) &&
                   gather * unit == kCachelineBytes,
               "bad stride geometry: G=", gather, " unit=", unit);
    const unsigned u = floorLog2(unit);       // chunk offset bits
    const unsigned s = floorLog2(gather);     // swapped segment width
    // Figure 10: the chunk-select field of the page offset trades
    // places with the line-select field, so a virtually-contiguous
    // strided walk lands on chunk slot `sector` of G consecutive
    // physical lines.
    const std::uint64_t f1 = bits(vaddr, u, s);
    const std::uint64_t f2 = bits(vaddr, u + s, s);
    Addr out = insertBits(vaddr, u, s, f2);
    out = insertBits(out, u + s, s, f1);
    return out;
}

GatherPlan
AddressMapping::strideGather(Addr vaddr, unsigned gather,
                             unsigned unit) const
{
    sam_assert(vaddr % kCachelineBytes == 0,
               "sload address must be line-aligned");
    GatherPlan plan;
    plan.lines.reserve(gather);
    for (unsigned i = 0; i < gather; ++i) {
        const Addr p = strideRemap(vaddr + i * unit, gather, unit);
        plan.lines.push_back(p & ~Addr{kCachelineBytes - 1});
        if (i == 0)
            plan.sector = static_cast<unsigned>(
                (p % kCachelineBytes) / unit);
    }
    return plan;
}

} // namespace sam
