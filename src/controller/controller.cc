#include "src/controller/controller.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/telemetry/telemetry.hh"

namespace sam {

namespace {

RequestClass
requestClassOf(const MemRequest &req)
{
    if (req.isScrub)
        return RequestClass::Scrub;
    switch (req.type) {
      case AccessType::Read:        return RequestClass::Read;
      case AccessType::Write:       return RequestClass::Write;
      case AccessType::StrideRead:  return RequestClass::StrideRead;
      case AccessType::StrideWrite: return RequestClass::StrideWrite;
    }
    panic("unknown AccessType");
}

} // namespace

void
ControllerStats::registerIn(StatGroup &group) const
{
    group.addCounter("readsServed", readsServed);
    group.addCounter("writesServed", writesServed);
    group.addCounter("strideReadsServed", strideReadsServed);
    group.addCounter("strideWritesServed", strideWritesServed);
    group.addCounter("frRowHitPicks", frRowHitPicks,
                     "FR-FCFS row-hit first picks");
    group.addCounter("fcfsPicks", fcfsPicks, "oldest-first picks");
    group.addCounter("scrubWrites", scrubWrites,
                     "RAS demand-scrub writebacks");
    group.addAccum("totalReadLatency", totalReadLatency,
                   "sum of read latencies (cycles)");
}

MemoryController::MemoryController(Device &device, DataPath &data_path,
                                   const AddressMapping &mapping,
                                   ControllerParams params,
                                   bool functional)
    : device_(device), dataPath_(data_path), mapping_(mapping),
      params_(params), functional_(functional),
      readQ_(device.geometry()), writeQ_(device.geometry())
{
    device_.addRowListener(this);
}

MemoryController::~MemoryController()
{
    device_.removeRowListener(this);
}

void
MemoryController::rowOpened(std::size_t flat_bank, std::uint64_t row)
{
    readQ_.noteRowOpened(flat_bank, row);
    writeQ_.noteRowOpened(flat_bank, row);
}

void
MemoryController::rowClosed(std::size_t flat_bank)
{
    readQ_.noteRowClosed(flat_bank);
    writeQ_.noteRowClosed(flat_bank);
}

void
MemoryController::push(MemRequest req)
{
    sam_assert(req.gatherCount > 0,
               "request not expanded by a design model");
    if (isWrite(req.type))
        writeQ_.push(std::move(req));
    else
        readQ_.push(std::move(req));
}

Completion
MemoryController::serve(MemRequest req)
{
    // The scheduling clock models command-bus occupancy only (one slot
    // per PRE/ACT/CAS); array timing legality is the device's job.
    // Serialising requests behind each other's tRCD here would deny the
    // bank-level parallelism a real FR-FCFS controller exploits.
    const Cycle earliest = std::max(now_, req.arrival);
    if (telemetry_) {
        telemetry_->beginRequest(req.id, requestClassOf(req), req.coreId,
                                 req.device.addr.channel, req.arrival,
                                 readQ_.size(), writeQ_.size(), earliest);
    }
    const AccessResult r = device_.access(req.device, earliest);
    now_ = earliest + 1 + 2 * r.activates;

    Completion c;
    c.id = req.id;
    c.coreId = req.coreId;
    c.isRead = !isWrite(req.type);
    c.done = r.done + params_.pipelineLatency;
    if (telemetry_)
        telemetry_->endRequest(r, c.done);

    switch (req.type) {
      case AccessType::Read:
        if (functional_) {
            c.outcome = dataPath_.readLine(req.gatherLines[0]);
            pushScrubs(c.outcome, c.done, req.coreId);
        }
        ++stats_.readsServed;
        stats_.totalReadLatency += static_cast<double>(c.done -
                                                       req.arrival);
        break;
      case AccessType::StrideRead:
        if (functional_) {
            c.outcome = dataPath_.strideRead(req.gatherLines.data(),
                                             req.gatherCount, req.sector,
                                             req.strideUnit);
            pushScrubs(c.outcome, c.done, req.coreId);
        }
        ++stats_.strideReadsServed;
        stats_.totalReadLatency += static_cast<double>(c.done -
                                                       req.arrival);
        break;
      case AccessType::Write:
        if (functional_ && !req.isScrub) {
            sam_assert(req.writeData.size() == kCachelineBytes,
                       "write without a full-line payload");
            dataPath_.writeLine(req.gatherLines[0], req.writeData);
        }
        if (req.isScrub)
            ++stats_.scrubWrites;
        ++stats_.writesServed;
        break;
      case AccessType::StrideWrite:
        if (functional_) {
            sam_assert(req.writeData.size() == kCachelineBytes,
                       "stride write without a full-line payload");
            dataPath_.strideWrite(req.gatherLines.data(), req.gatherCount,
                                  req.sector, req.strideUnit,
                                  req.writeData.data());
        }
        ++stats_.strideWritesServed;
        break;
    }
    return c;
}

void
MemoryController::pushScrubs(const ReadOutcome &outcome, Cycle when,
                             unsigned core_id)
{
    // Corrected lines are written back as real writes so the scrub
    // traffic competes for write-queue slots and bus slots. The data
    // movement already happened inside the DataPath; these requests are
    // timing-only.
    for (Addr line : outcome.scrubbedLines) {
        MemRequest scrub;
        scrub.type = AccessType::Write;
        scrub.addr = line;
        scrub.isScrub = true;
        scrub.arrival = when;
        scrub.coreId = core_id;
        scrub.device.addr = mapping_.decompose(line);
        scrub.device.isWrite = true;
        scrub.setLine(line);
        push(std::move(scrub));
    }
}

Cycle
MemoryController::earliestAction()
{
    const Cycle r = readQ_.empty() ? kInvalidCycle
                                   : readQ_.earliestActionable(now_);
    const Cycle w = writeQ_.empty() ? kInvalidCycle
                                    : writeQ_.earliestActionable(now_);
    const Cycle earliest = std::min(r, w);
    return earliest == kInvalidCycle ? kInvalidCycle
                                     : std::max(now_, earliest);
}

std::optional<Completion>
MemoryController::serviceNext()
{
    if (readQ_.empty() && writeQ_.empty())
        return std::nullopt;

    // Write-drain policy: writes are posted and only drained when the
    // queue is pressurised or there is nothing else to do.
    if (drainingWrites_ && writeQ_.size() <= params_.writeLowWatermark)
        drainingWrites_ = false;
    if (!drainingWrites_ && writeQ_.size() >= params_.writeHighWatermark)
        drainingWrites_ = true;

    const bool serve_write =
        !writeQ_.empty() && (drainingWrites_ || readQ_.empty());

    RequestQueue &q = serve_write ? writeQ_ : readQ_;
    bool row_hit_pick = false;
    MemRequest req = q.popBest(now_, row_hit_pick);
    if (row_hit_pick)
        ++stats_.frRowHitPicks;
    else
        ++stats_.fcfsPicks;
    return serve(std::move(req));
}

Cycle
MemoryController::drainAll()
{
    Cycle last = now_;
    while (auto c = serviceNext())
        last = std::max(last, c->done);
    return last;
}

} // namespace sam
