/**
 * @file
 * Indexed FR-FCFS scheduling queue.
 *
 * Replaces the controller's former O(n) scan per scheduling pick with
 * three incremental indexes over the queued requests:
 *
 *  - a min-heap by (arrival, seq) of requests that have not yet
 *    arrived ("pending");
 *  - a min-heap by insertion sequence of arrived requests
 *    ("eligible") -- the FCFS order;
 *  - per-(bank, row) buckets of arrived requests, each a min-heap by
 *    insertion sequence -- the row-hit candidates, probed only for
 *    banks whose open row matches.
 *
 * Rule 1 no longer scans every bank of the geometry: the queue keeps
 * its own open-row image per flat bank, fed by the Device's
 * RowStateListener transitions (the controller forwards them), plus a
 * per-bank eligible-request count. A "hot" list holds the banks that
 * are both open and have eligible requests; a pick probes only those,
 * lazily dropping banks that stopped qualifying. A paper-scale fig15
 * sweep has hundreds of banks of which a handful are hot at any time,
 * so this is the difference between O(totalBanks) and O(hot) per pick.
 *
 * Eligibility is monotone (the controller clock never runs backwards),
 * so a request moves pending -> eligible exactly once. Heap entries
 * are removed lazily: a pick invalidates the request's entries in the
 * other indexes, which are skipped when probed and compacted away once
 * they outnumber live entries, keeping memory proportional to the
 * actual backlog.
 *
 * The pick rule is bit-identical to the original scan's:
 *   1. the oldest-inserted arrived request targeting its bank's open
 *      row;
 *   2. else the oldest-inserted arrived request;
 *   3. else the earliest-arriving request (ties by insertion order).
 */

#ifndef SAM_CONTROLLER_REQUEST_QUEUE_HH
#define SAM_CONTROLLER_REQUEST_QUEUE_HH

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/controller/request.hh"
#include "src/dram/device.hh"

namespace sam {

class RequestQueue
{
  public:
    explicit RequestQueue(const Geometry &geom);

    void push(MemRequest req);

    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }

    /**
     * Remove and return the FR-FCFS-best request given the scheduling
     * clock `now` and the open-row image maintained through
     * noteRowOpened()/noteRowClosed(). `row_hit_pick` reports whether
     * rule 1 (open-row hit) selected the request. The queue must be
     * non-empty.
     */
    MemRequest popBest(Cycle now, bool &row_hit_pick);

    /**
     * Earliest cycle popBest(now, ...) would have a request to act on:
     * `now` itself when anything has already arrived, otherwise the
     * earliest live arrival still pending. kInvalidCycle when empty.
     * Promotes/prunes lazily (like popBest), hence non-const.
     */
    Cycle earliestActionable(Cycle now);

    /** Row-state transitions forwarded from the Device's listener. */
    void noteRowOpened(std::size_t flat_bank, std::uint64_t row);
    void noteRowClosed(std::size_t flat_bank);

  private:
    enum class SlotState : std::uint8_t { Free, Pending, Eligible };

    struct Slot
    {
        MemRequest req;
        std::uint64_t seq = 0;
        /** Flat bank of the request; cached at promotion so take()
         *  can decrement the bank's eligible count. */
        std::uint32_t flatBank = 0;
        SlotState state = SlotState::Free;
    };

    /** Heap entry: insertion order first (FCFS). */
    using SeqEntry = std::pair<std::uint64_t, std::uint32_t>;
    /** Heap entry: arrival first, insertion order second. */
    using ArrEntry = std::tuple<Cycle, std::uint64_t, std::uint32_t>;

    template <typename T>
    using MinHeap = std::priority_queue<T, std::vector<T>,
                                        std::greater<T>>;

    std::uint64_t bucketKey(const MappedAddr &addr) const
    {
        return (static_cast<std::uint64_t>(addr.flatBank(geom_)) << 40) |
               addr.row;
    }

    bool stale(const SeqEntry &e, SlotState expect) const
    {
        const Slot &s = slots_[e.second];
        return s.state != expect || s.seq != e.first;
    }

    /** Move every request with arrival <= now into the arrived indexes. */
    void promote(Cycle now);

    /** Detach the request from its slot and free the slot. */
    MemRequest take(std::uint32_t slot_idx);

    /** Rebuild the arrived indexes once stale entries dominate. */
    void maybeCompact();

    /** Add the bank to the hot list if it qualifies and is absent. */
    void maybeHot(std::size_t flat_bank);

    /** Sentinel for a bank with no open row. */
    static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

    Geometry geom_;

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;          ///< Queued requests (all states).
    std::size_t eligibleLive_ = 0;  ///< Queued requests in Eligible.

    MinHeap<ArrEntry> pending_;
    MinHeap<SeqEntry> eligible_;
    std::unordered_map<std::uint64_t, MinHeap<SeqEntry>> rowBuckets_;
    std::size_t bucketEntries_ = 0;

    /** Open row per flat bank (kNoRow when closed). */
    std::vector<std::uint64_t> openRow_;
    /** Eligible (arrived, un-picked) requests per flat bank. */
    std::vector<std::uint32_t> bankEligible_;
    /** Banks that were open with eligible requests when last touched;
     *  membership flag + unordered list, pruned lazily in popBest. */
    std::vector<std::uint8_t> inHot_;
    std::vector<std::uint32_t> hotBanks_;
};

} // namespace sam

#endif // SAM_CONTROLLER_REQUEST_QUEUE_HH
