/**
 * @file
 * Strided-granularity and layout explorer (Sections 4.4, 5.4.1).
 *
 * Shows how the chipkill scheme sets the strided granularity (16/8/4
 * bits per chip -> 32/16/8-byte chunks -> gather factors 2/4/8), what
 * one sload returns under each, and how the bandwidth utilization of a
 * single-field scan changes. Also prints the chip-level I/O behaviour
 * of Figure 7: which drivers each Sx4_n stride mode enables and what
 * each DQ transmits.
 */

#include <cstdio>

#include "src/common/logging.hh"
#include "src/core/session.hh"
#include "src/dram/io_buffer.hh"
#include "src/sim/system.hh"

int
main()
{
    using namespace sam;
    setQuietLogging(true);

    // ----- Chip-level view (Figure 7) --------------------------------
    std::printf("Chip I/O path in stride mode (Figure 7):\n");
    ChipIoPath io;
    for (unsigned b = 0; b < 4; ++b)
        io.loadBuffer(b, 0x11111111u * (b + 1) + 0x03020100u);
    for (unsigned lane = 0; lane < 4; ++lane) {
        io.setMode(IoMode::Sx4, lane);
        std::printf("  Sx4_%u enables drivers {", lane);
        const auto drivers = io.enabledDrivers();
        for (std::size_t i = 0; i < drivers.size(); ++i)
            std::printf("%s%u", i ? "," : "", drivers[i]);
        std::printf("}, DQ payload:");
        for (std::uint8_t byte : io.burstPayload())
            std::printf(" %02x", byte);
        std::printf("\n");
    }

    // ----- Granularity vs scan efficiency ----------------------------
    std::printf("\nGranularity (chipkill symbol size) vs field-scan "
                "efficiency, SAM-en, Q3:\n\n");
    std::printf("  %-18s %6s %3s %12s %12s %9s\n", "scheme", "chunk",
                "G", "mem bursts", "cycles", "speedup");

    const Query q3 = benchmarkQQueries()[2];
    for (EccScheme ecc :
         {EccScheme::Ssc32, EccScheme::Ssc, EccScheme::SscDsd}) {
        SimConfig cfg;
        cfg.taRecords = 4096;
        cfg.tbRecords = 4096;
        cfg.ecc = ecc;
        Session session(cfg);
        const Comparison c = session.compare(DesignKind::SamEn, q3);
        session.checkResult(q3, c.design);
        std::printf("  %-18s %5uB %3u %12llu %12llu %8.2fx\n",
                    eccSchemeName(ecc).c_str(), strideUnitBytes(ecc),
                    gatherFactor(ecc),
                    static_cast<unsigned long long>(
                        c.design.strideReads + c.design.memReads),
                    static_cast<unsigned long long>(c.design.cycles),
                    c.speedup);
    }

    // ----- Record alignment (Figure 11) ------------------------------
    std::printf("\nRecord alignment strategies (Figure 11), field f3 "
                "of records 0..7:\n");
    Geometry geom;
    TableSchema sch{"Ta", 16, 1024}; // 128B records
    for (LayoutKind layout :
         {LayoutKind::SamAligned, LayoutKind::VerticalGroup,
          LayoutKind::GsSegmented}) {
        Table t(sch, Addr{1} << 30, layout, 8, geom);
        const auto plan = t.gatherPlan(0, 3, 8);
        std::printf("  %-15s sector %u, lines:", layoutName(layout).c_str(),
                    plan.sector);
        for (Addr l : plan.lines)
            std::printf(" +%llx",
                        static_cast<unsigned long long>(l - t.base()));
        std::printf("\n");
    }
    std::printf("\nOne sload returns all eight records' field chunk in "
                "a single 64B burst on every SAM layout.\n");
    return 0;
}
