/**
 * @file
 * Reliability demonstration (the paper's core differentiator, Sections
 * 1-3), now driven by the *live* RAS pipeline: a whole-chip kill fires
 * mid-query via the fault injector, and the read-path RAS policy
 * reacts while the query is running.
 *
 *  - SAM-en (SSC/SSC-DSD chipkill): every corrupted codeword is
 *    corrected on the fly, corrected lines are demand-scrubbed (real
 *    timed writebacks), and the query result is exact.
 *  - Baseline with SEC-DED: the failure is (at best) detected but not
 *    correctable -- the bounded re-read retry cannot revive a dead
 *    chip, the reads are poisoned, and the executor degrades
 *    gracefully: affected rows are flagged, never silently used.
 *  - GS-DRAM (chipkill-incompatible layout): no ECC at all; the
 *    corruption flows silently into the query result.
 */

#include <cstdio>

#include "src/common/logging.hh"
#include "src/core/session.hh"
#include "src/sim/system.hh"

int
main()
{
    using namespace sam;
    setQuietLogging(true);

    const Query q3 = benchmarkQQueries()[2]; // SUM(f9) FROM Ta WHERE...

    struct Scenario
    {
        const char *label;
        DesignKind design;
        EccScheme ecc;
        unsigned chip; // which chip dies (SEC-DED detection depends
                       // on the chip's bit positions; chip 0 is one
                       // it detects rather than silently aliases)
    };
    const Scenario scenarios[] = {
        {"SAM-en + SSC-DSD chipkill", DesignKind::SamEn,
         EccScheme::SscDsd, 5},
        {"SAM-en + SSC chipkill", DesignKind::SamEn, EccScheme::Ssc, 5},
        {"SAM-en + Bamboo-72 (ext.)", DesignKind::SamEn,
         EccScheme::Bamboo72, 5},
        {"baseline + SEC-DED only", DesignKind::Baseline,
         EccScheme::SecDed, 0},
        {"GS-DRAM (no compatible ECC)", DesignKind::GsDram,
         EccScheme::None, 5},
    };

    std::printf("Live fault injection: a whole chip dies at cycle 50, "
                "mid-%s, on each design:\n\n",
                q3.name.c_str());
    std::printf("%-30s %12s %12s %8s %8s %8s %8s  %s\n",
                "configuration", "SUM (got)", "SUM (expect)", "scrubs",
                "retries", "poison", "rows!", "verdict");

    for (const Scenario &sc : scenarios) {
        SimConfig cfg;
        cfg.taRecords = 2048;
        cfg.tbRecords = 2048;
        cfg.design = sc.design;
        cfg.ecc = sc.ecc;
        cfg.faults.model = FaultModel::Chipkill;
        cfg.faults.chipkillAt = 50;
        cfg.faults.chipkillChip = sc.chip;
        System sys(cfg);

        const RunStats r = sys.runQuery(q3);
        const QueryResult expect =
            referenceResult(q3, sys.taSchema(), sys.tbSchema());

        const bool exact = r.result == expect;
        const char *verdict =
            exact ? (r.eccCorrectedLines > 0 ? "CORRECTED+SCRUBBED"
                                             : "clean")
                  : (r.result.degraded() ? "DEGRADED (flagged)"
                                         : "SILENT CORRUPTION");
        std::printf("%-30s %12llu %12llu %8llu %8llu %8llu %8llu  %s\n",
                    sc.label,
                    static_cast<unsigned long long>(r.result.aggregate),
                    static_cast<unsigned long long>(expect.aggregate),
                    static_cast<unsigned long long>(r.scrubWritebacks),
                    static_cast<unsigned long long>(r.readRetries),
                    static_cast<unsigned long long>(r.poisonedReads),
                    static_cast<unsigned long long>(
                        r.result.poisonedRows),
                    verdict);
    }

    std::printf(
        "\nSAM keeps the strided data consistent with the chipkill"
        "\ncodeword (Section 4.1): when the chip dies mid-query the"
        "\nRAS pipeline corrects every read, writes the healed lines"
        "\nback (scrub traffic competes for real bus slots), and the"
        "\nresult stays exact. SEC-DED can only detect: the retry"
        "\nbudget burns out, reads are poisoned, and the executor"
        "\nflags the affected rows instead of aggregating garbage."
        "\nGS-DRAM's gathered layout cannot keep a codeword together,"
        "\nso the corruption is silent -- the paper's motivating"
        "\ncomparison, now with the failure handling made explicit.\n");
    return 0;
}
