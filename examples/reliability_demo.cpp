/**
 * @file
 * Reliability demonstration (the paper's core differentiator, Sections
 * 1-3): inject a whole-chip failure into the simulated rank and run an
 * analytical query whose strided accesses traverse the failed chip.
 *
 *  - SAM-en (SSC-DSD chipkill): every corrupted codeword is corrected
 *    on the fly; the query result is exact.
 *  - GS-DRAM (chipkill-incompatible layout): the corruption flows
 *    silently into the query result.
 *  - Baseline with SEC-DED: the failure is (at best) detected but not
 *    correctable -- a crash/data-loss event on a real server.
 */

#include <cstdio>

#include "src/common/logging.hh"
#include "src/core/session.hh"
#include "src/sim/system.hh"

int
main()
{
    using namespace sam;
    setQuietLogging(true);

    const Query q3 = benchmarkQQueries()[2]; // SUM(f9) FROM Ta WHERE...

    struct Scenario
    {
        const char *label;
        DesignKind design;
        EccScheme ecc;
    };
    const Scenario scenarios[] = {
        {"SAM-en + SSC-DSD chipkill", DesignKind::SamEn,
         EccScheme::SscDsd},
        {"SAM-en + SSC chipkill", DesignKind::SamEn, EccScheme::Ssc},
        {"SAM-en + Bamboo-72 (ext.)", DesignKind::SamEn,
         EccScheme::Bamboo72},
        {"GS-DRAM (no compatible ECC)", DesignKind::GsDram,
         EccScheme::None},
        {"baseline + SEC-DED only", DesignKind::Baseline,
         EccScheme::SecDed},
    };

    std::printf("Injecting a whole-chip failure (chip 5) and running "
                "%s on each design:\n\n",
                q3.name.c_str());
    std::printf("%-30s %14s %14s %12s %12s  %s\n", "configuration",
                "SUM (got)", "SUM (expect)", "corrected",
                "uncorrectable", "verdict");

    for (const Scenario &sc : scenarios) {
        SimConfig cfg;
        cfg.taRecords = 2048;
        cfg.tbRecords = 2048;
        cfg.design = sc.design;
        cfg.ecc = sc.ecc;
        System sys(cfg);

        sys.runQuery(q3); // materialize tables, warm run
        sys.dataPath().failChip(5);
        const RunStats r = sys.runQuery(q3);
        const QueryResult expect =
            referenceResult(q3, sys.taSchema(), sys.tbSchema());

        const bool exact = r.result == expect;
        const char *verdict =
            exact ? (r.eccCorrectedLines > 0 ? "CORRECTED" : "clean")
                  : (r.eccUncorrectable > 0 ? "DETECTED-FATAL"
                                            : "SILENT CORRUPTION");
        std::printf("%-30s %14llu %14llu %12llu %12llu  %s\n",
                    sc.label,
                    static_cast<unsigned long long>(r.result.aggregate),
                    static_cast<unsigned long long>(expect.aggregate),
                    static_cast<unsigned long long>(
                        r.eccCorrectedLines),
                    static_cast<unsigned long long>(r.eccUncorrectable),
                    verdict);
    }

    std::printf(
        "\nSAM keeps the strided data consistent with the chipkill"
        "\ncodeword (Section 4.1): strided reads survive a dead chip"
        "\nexactly like regular reads. GS-DRAM's gathered layout cannot"
        "\nkeep a codeword together, so server-class reliability is"
        "\nlost -- the paper's motivating comparison.\n");
    return 0;
}
