/**
 * @file
 * HTAP scenario (Section 3.1): a hybrid workload mixing OLAP-style
 * analytical scans (column-preferring Q queries) with OLTP-style
 * transactional operations (row-preferring Qs queries) on the *same*
 * tables. Neither a pure row store nor a pure column store serves both
 * well -- the software "ideal" must pick one layout per table, while
 * SAM serves both access patterns from a single row-store-aligned
 * layout.
 *
 * This example runs a 6-query HTAP mix and reports per-phase and
 * end-to-end time for the baseline, the two software layouts, and
 * SAM-en.
 */

#include <cstdio>
#include <vector>

#include "src/common/logging.hh"
#include "src/core/session.hh"

int
main()
{
    using namespace sam;
    setQuietLogging(true);

    SimConfig cfg;
    cfg.taRecords = 4096;
    cfg.tbRecords = 8192;
    Session session(cfg);

    // The HTAP mix: analytics over Ta/Tb interleaved with
    // transactional reads and updates.
    const auto qq = benchmarkQQueries();
    const auto qs = benchmarkQsQueries();
    std::vector<Query> mix = {
        qq[2],  // Q3  SUM(f9) over Ta           (OLAP)
        qs[2],  // Qs3 SELECT * over Ta          (OLTP read)
        qq[5],  // Q6  AVG(f1) over Tb           (OLAP)
        qq[10], // Q11 UPDATE Tb f3,f4           (OLTP write)
        qq[0],  // Q1  SELECT f3,f4 over Ta      (OLAP)
        qs[5],  // Qs6 INSERT INTO Tb            (OLTP write)
    };

    struct Contender
    {
        DesignKind design;
        const char *note;
    };
    const std::vector<Contender> contenders = {
        {DesignKind::Baseline, "commodity DRAM, row store"},
        {DesignKind::Ideal, "software dual layout (per-query best)"},
        {DesignKind::SamEn, "SAM-en, one layout, sload/sstore"},
    };

    std::printf("HTAP mix (%zu queries), cycles per phase:\n\n",
                mix.size());
    std::printf("%-8s", "query");
    for (const auto &c : contenders)
        std::printf("%16s", designName(c.design).c_str());
    std::printf("\n");

    std::vector<std::uint64_t> total(contenders.size(), 0);
    for (const Query &q : mix) {
        std::printf("%-8s", q.name.c_str());
        for (std::size_t i = 0; i < contenders.size(); ++i) {
            const RunStats r = session.run(contenders[i].design, q);
            session.checkResult(q, r);
            total[i] += r.cycles;
            std::printf("%16llu",
                        static_cast<unsigned long long>(r.cycles));
        }
        std::printf("\n");
    }
    std::printf("%-8s", "TOTAL");
    for (std::size_t i = 0; i < contenders.size(); ++i)
        std::printf("%16llu",
                    static_cast<unsigned long long>(total[i]));
    std::printf("\n\n");
    for (std::size_t i = 0; i < contenders.size(); ++i) {
        std::printf("  %-10s %-42s %.2fx vs baseline\n",
                    designName(contenders[i].design).c_str(),
                    contenders[i].note,
                    static_cast<double>(total[0]) /
                        static_cast<double>(total[i]));
    }
    std::printf(
        "\nNote: the software dual layout pays storage duplication and"
        "\nsynchronization in practice (Section 1); SAM achieves HTAP"
        "\nperformance from a single copy with chipkill intact.\n");
    return 0;
}
