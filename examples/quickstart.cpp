/**
 * @file
 * Quickstart: simulate one IMDB query (Q1: SELECT f3, f4 FROM Ta WHERE
 * f10 > x) on the SAM-en design and on the commodity row-store
 * baseline, and print the speedup, power, and ECC summary.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "src/common/logging.hh"
#include "src/core/session.hh"

int
main()
{
    using namespace sam;
    setQuietLogging(true);

    // Scale the paper's 10M-record tables down for a quick demo.
    SimConfig cfg;
    cfg.taRecords = 4096;
    cfg.tbRecords = 4096;

    Session session(cfg);
    const Query q1 = benchmarkQQueries()[0];

    std::printf("running %s on SAM-en and baseline...\n",
                q1.name.c_str());
    const Comparison cmp = session.compare(DesignKind::SamEn, q1);
    session.checkResult(q1, cmp.design); // functional result verified

    std::printf("\n  %-22s %14s %14s\n", "", "baseline", "SAM-en");
    std::printf("  %-22s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(cmp.baseline.cycles),
                static_cast<unsigned long long>(cmp.design.cycles));
    std::printf("  %-22s %14llu %14llu\n", "memory reads",
                static_cast<unsigned long long>(cmp.baseline.memReads),
                static_cast<unsigned long long>(cmp.design.memReads));
    std::printf("  %-22s %14llu %14llu\n", "stride reads (sload)",
                static_cast<unsigned long long>(
                    cmp.baseline.strideReads),
                static_cast<unsigned long long>(cmp.design.strideReads));
    std::printf("  %-22s %13.1f%% %13.1f%%\n", "row-buffer hit rate",
                cmp.baseline.rowHitRate() * 100.0,
                cmp.design.rowHitRate() * 100.0);
    std::printf("  %-22s %14.1f %14.1f\n", "power (mW)",
                cmp.baseline.power.totalPowerMw(),
                cmp.design.power.totalPowerMw());
    std::printf("\n  speedup            : %.2fx\n", cmp.speedup);
    std::printf("  energy efficiency  : %.2fx\n", cmp.energyEfficiency);
    std::printf("  query result       : %llu rows, checksum %llu "
                "(verified against reference)\n",
                static_cast<unsigned long long>(cmp.design.result.rows),
                static_cast<unsigned long long>(
                    cmp.design.result.checksum));
    return 0;
}
